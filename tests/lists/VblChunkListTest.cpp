//===- tests/lists/VblChunkListTest.cpp - Unrolled VBL tests -------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
//
// ChunkLock protocol tests plus chunk-list structure tests: split on
// overflow, compaction of dead slots, head splicing, empty-chunk
// unlink, invariants under randomized churn, and the chunk stats
// counters. The generic registry-driven suites (basic / concurrent /
// differential / property / chaos) already cover vbl-chunk* set
// semantics; this file asserts the *chunked* behaviours those suites
// cannot see.
//
//===----------------------------------------------------------------------===//

#include "core/VblChunkList.h"

#include "core/ChunkLock.h"
#include "reclaim/LeakyDomain.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

using namespace vbl;

//===----------------------------------------------------------------------===//
// ChunkLock unit tests
//===----------------------------------------------------------------------===//

TEST(ChunkLock, FastPathSkipsValidationWhenVersionUnchanged) {
  ChunkLock Lock;
  const uint64_t Seen = Lock.optimisticVersion<DirectPolicy>(nullptr);
  ASSERT_NE(Seen, ChunkLock::InvalidVersion);
  bool Revalidated = true;
  bool ValidateRan = false;
  EXPECT_TRUE(Lock.acquireIfValidSince<DirectPolicy>(
      nullptr, Seen,
      [&] {
        ValidateRan = true;
        return true;
      },
      &Revalidated));
  EXPECT_FALSE(Revalidated);
  EXPECT_FALSE(ValidateRan);
  EXPECT_TRUE(Lock.isLocked());
  Lock.release<DirectPolicy>(nullptr);
  EXPECT_FALSE(Lock.isLocked());
}

TEST(ChunkLock, SlowPathRevalidatesAfterInterveningWriter) {
  ChunkLock Lock;
  const uint64_t Seen = Lock.optimisticVersion<DirectPolicy>(nullptr);
  // An intervening critical section bumps the version past Seen + 1.
  ASSERT_TRUE(Lock.acquireIfValidSince<DirectPolicy>(
      nullptr, ChunkLock::InvalidVersion, [] { return true; }));
  Lock.release<DirectPolicy>(nullptr);
  bool Revalidated = false;
  bool ValidateRan = false;
  EXPECT_TRUE(Lock.acquireIfValidSince<DirectPolicy>(
      nullptr, Seen,
      [&] {
        ValidateRan = true;
        return true;
      },
      &Revalidated));
  EXPECT_TRUE(Revalidated);
  EXPECT_TRUE(ValidateRan);
  Lock.release<DirectPolicy>(nullptr);
}

TEST(ChunkLock, FailedValidationReleases) {
  ChunkLock Lock;
  EXPECT_FALSE(Lock.acquireIfValidSince<DirectPolicy>(
      nullptr, ChunkLock::InvalidVersion, [] { return false; }));
  EXPECT_FALSE(Lock.isLocked());
  // The lock stays usable after a rejected acquisition.
  EXPECT_TRUE(Lock.acquireIfValidSince<DirectPolicy>(
      nullptr, ChunkLock::InvalidVersion, [] { return true; }));
  Lock.release<DirectPolicy>(nullptr);
}

TEST(ChunkLock, OptimisticProbeFailsWhileHeld) {
  ChunkLock Lock;
  ASSERT_TRUE(Lock.acquireIfValidSince<DirectPolicy>(
      nullptr, ChunkLock::InvalidVersion, [] { return true; }));
  EXPECT_EQ(Lock.optimisticVersion<DirectPolicy>(nullptr),
            ChunkLock::InvalidVersion);
  Lock.release<DirectPolicy>(nullptr);
  EXPECT_NE(Lock.optimisticVersion<DirectPolicy>(nullptr),
            ChunkLock::InvalidVersion);
}

//===----------------------------------------------------------------------===//
// Chunk structure behaviour
//===----------------------------------------------------------------------===//

namespace {

template <class ListT> class ChunkVariantTest : public ::testing::Test {};

using ChunkVariants =
    ::testing::Types<VblChunkList<1>, VblChunkList<2>, VblChunkList<7>,
                     VblChunkList<15>,
                     VblChunkList<7, reclaim::LeakyDomain>,
                     VblChunkList<4, reclaim::EpochDomain, DirectPolicy,
                                  /*Adaptive=*/true>,
                     VblChunkList<7, reclaim::EpochDomain, DirectPolicy,
                                  /*Adaptive=*/true>>;
TYPED_TEST_SUITE(ChunkVariantTest, ChunkVariants);

TYPED_TEST(ChunkVariantTest, SetSemanticsAndInvariants) {
  TypeParam List;
  EXPECT_TRUE(List.checkInvariants());
  EXPECT_TRUE(List.insert(10));
  EXPECT_FALSE(List.insert(10));
  EXPECT_TRUE(List.contains(10));
  EXPECT_FALSE(List.contains(11));
  EXPECT_TRUE(List.remove(10));
  EXPECT_FALSE(List.remove(10));
  EXPECT_FALSE(List.contains(10));
  EXPECT_TRUE(List.checkInvariants());
  EXPECT_EQ(List.sizeSlow(), 0u);
}

TYPED_TEST(ChunkVariantTest, AscendingOverflowSplitsChunks) {
  TypeParam List;
  constexpr unsigned K = TypeParam::KeysPerChunk;
  // 4K ascending keys must overflow the first chunk repeatedly.
  const SetKey N = 4 * K;
  for (SetKey Key = 1; Key <= N; ++Key)
    ASSERT_TRUE(List.insert(Key));
  EXPECT_TRUE(List.checkInvariants());
  EXPECT_EQ(List.sizeSlow(), static_cast<size_t>(N));
  // Splits happened: more than one chunk, and no chunk holds the whole
  // key set (each holds at most K).
  EXPECT_GE(List.chunkCountSlow(), static_cast<size_t>(N) / K);
  std::vector<SetKey> Snap = List.snapshot();
  for (SetKey Key = 1; Key <= N; ++Key)
    EXPECT_TRUE(List.contains(Key)) << Key;
  EXPECT_TRUE(std::is_sorted(Snap.begin(), Snap.end()));
}

TYPED_TEST(ChunkVariantTest, DescendingInsertsSpliceBelowEveryAnchor) {
  TypeParam List;
  // Every insert is below every existing anchor: the head-splice path.
  for (SetKey Key = 50; Key >= 1; --Key)
    ASSERT_TRUE(List.insert(Key));
  EXPECT_TRUE(List.checkInvariants());
  EXPECT_EQ(List.sizeSlow(), 50u);
  for (SetKey Key = 1; Key <= 50; ++Key)
    EXPECT_TRUE(List.contains(Key)) << Key;
}

TYPED_TEST(ChunkVariantTest, EmptiedChunksAreUnlinked) {
  TypeParam List;
  constexpr unsigned K = TypeParam::KeysPerChunk;
  const SetKey N = 4 * K;
  for (SetKey Key = 1; Key <= N; ++Key)
    ASSERT_TRUE(List.insert(Key));
  for (SetKey Key = 1; Key <= N; ++Key)
    ASSERT_TRUE(List.remove(Key));
  // Single-threaded, the best-effort unlink never loses its validation:
  // every emptied chunk must be gone.
  EXPECT_EQ(List.chunkCountSlow(), 0u);
  EXPECT_EQ(List.sizeSlow(), 0u);
  EXPECT_TRUE(List.checkInvariants());
}

TYPED_TEST(ChunkVariantTest, RandomChurnMatchesStdSet) {
  TypeParam List;
  std::set<SetKey> Model;
  Xoshiro256 Rng(0x5eedULL + TypeParam::KeysPerChunk);
  // A narrow key range forces constant split/compact/unlink traffic.
  constexpr uint64_t Range = 64;
  for (int I = 0; I != 6000; ++I) {
    const SetKey Key = static_cast<SetKey>(Rng.nextBounded(Range)) + 1;
    switch (Rng.nextBounded(3)) {
    case 0:
      EXPECT_EQ(List.insert(Key), Model.insert(Key).second);
      break;
    case 1:
      EXPECT_EQ(List.remove(Key), Model.erase(Key) != 0);
      break;
    default:
      EXPECT_EQ(List.contains(Key), Model.count(Key) != 0);
      break;
    }
  }
  EXPECT_TRUE(List.checkInvariants());
  const std::vector<SetKey> Snap = List.snapshot();
  EXPECT_TRUE(std::equal(Snap.begin(), Snap.end(), Model.begin(),
                         Model.end()));
}

TEST(VblChunkListTest, CompactionReclaimsDeadSlotsWithoutSplitting) {
  VblChunkList<2> List;
  ASSERT_TRUE(List.insert(10));
  ASSERT_TRUE(List.insert(20)); // Chunk (anchor 10) now has no clean slot.
  ASSERT_TRUE(List.remove(20)); // Dead slot, still no clean slot.
  EXPECT_EQ(List.chunkCountSlow(), 1u);
  const stats::Snapshot Before = stats::snapshotAll();
  ASSERT_TRUE(List.insert(15)); // Routed to the full-but-half-dead chunk.
  EXPECT_TRUE(List.contains(10));
  EXPECT_TRUE(List.contains(15));
  EXPECT_FALSE(List.contains(20));
  EXPECT_EQ(List.chunkCountSlow(), 1u); // Compacted, not split.
  EXPECT_TRUE(List.checkInvariants());
  if (stats::Enabled) {
    const stats::Snapshot D = stats::snapshotAll().delta(Before);
    EXPECT_EQ(D.get(stats::Counter::ChunkCompactions), 1u);
    EXPECT_EQ(D.get(stats::Counter::ChunkSplits), 0u);
  }
}

TEST(VblChunkListTest, SplitCounterAndOccupancyHistogram) {
  if (!stats::Enabled)
    GTEST_SKIP() << "stats compiled out";
  const stats::Snapshot Before = stats::snapshotAll();
  VblChunkList<2> List;
  ASSERT_TRUE(List.insert(10));
  ASSERT_TRUE(List.insert(20));
  ASSERT_TRUE(List.insert(30)); // Full chunk + live keys only: a split.
  EXPECT_EQ(List.chunkCountSlow(), 2u);
  ASSERT_TRUE(List.remove(10));
  ASSERT_TRUE(List.remove(20)); // Lower chunk emptied: an unlink.
  const stats::Snapshot D = stats::snapshotAll().delta(Before);
  EXPECT_EQ(D.get(stats::Counter::ChunkSplits), 1u);
  EXPECT_EQ(D.get(stats::Counter::ChunkUnlinks), 1u);
  // The split sampled occupancy 2 (bucket bit_width(2) == 2), the
  // unlink occupancy 0 (bucket 0).
  const auto &H = D.hist(stats::Histogram::ChunkOccupancy);
  EXPECT_EQ(H[stats::histogramBucket(2)], 1u);
  EXPECT_EQ(H[stats::histogramBucket(0)], 1u);
}

TEST(VblChunkListTest, ChunkLayoutIsLineAlignedAndPoolable) {
  // The whole point of the unrolling: K=7 packs header + one key line
  // into two cache lines, and every shape stays poolable.
  EXPECT_EQ(VblChunkList<7>::ChunkAlignment, size_t{CacheLineBytes});
  EXPECT_EQ(VblChunkList<7>::ChunkBytes, 2 * size_t{CacheLineBytes});
  EXPECT_EQ(VblChunkList<15>::ChunkBytes, 3 * size_t{CacheLineBytes});
  EXPECT_LE(VblChunkList<63>::ChunkBytes,
            reclaim::NodePool::MaxBlockBytes);
}

//===----------------------------------------------------------------------===//
// Contention-adaptive shapes (Adaptive=true)
//===----------------------------------------------------------------------===//

using AdaptiveK4 =
    VblChunkList<4, reclaim::EpochDomain, DirectPolicy, /*Adaptive=*/true>;

TEST(VblChunkListTest, AdaptiveMergeFoldsSingletonIntoSuccessor) {
  AdaptiveK4 List;
  // Ascending 1..5 lays out {1,2} -> {3,4,5} (median split of the full
  // first chunk). Removing 1 leaves a cold singleton whose union with
  // the 3-key successor fits one chunk, so the remove piggybacks a
  // merge: two sources frozen, one combined replacement swung in.
  for (SetKey Key = 1; Key <= 5; ++Key)
    ASSERT_TRUE(List.insert(Key));
  ASSERT_EQ(List.chunkCountSlow(), 2u);
  const stats::Snapshot Before = stats::snapshotAll();
  ASSERT_TRUE(List.remove(1));
  EXPECT_EQ(List.chunkCountSlow(), 1u);
  for (SetKey Key = 2; Key <= 5; ++Key)
    EXPECT_TRUE(List.contains(Key)) << Key;
  EXPECT_FALSE(List.contains(1));
  EXPECT_TRUE(List.checkInvariants());
  if (stats::Enabled) {
    const stats::Snapshot D = stats::snapshotAll().delta(Before);
    EXPECT_EQ(D.get(stats::Counter::ChunkMerges), 1u);
  }
}

TEST(VblChunkListTest, AdaptiveMergeRespectsQuarterFullHysteresis) {
  AdaptiveK4 List;
  // Build {10,15,20} -> {30}: ascending 10..50 splits into
  // {10,20} -> {30,40,50}, insert 15 refills the first chunk, removing
  // 40 and 50 thins the second to a singleton (whose own merge probe
  // hits Tail and gives up).
  for (SetKey Key : {10, 20, 30, 40, 50, 15})
    ASSERT_TRUE(List.insert(static_cast<SetKey>(Key)));
  ASSERT_TRUE(List.remove(40));
  ASSERT_TRUE(List.remove(50));
  ASSERT_EQ(List.chunkCountSlow(), 2u);
  const stats::Snapshot Before = stats::snapshotAll();
  // {15,20} left: half full, above the quarter-or-singleton watermark,
  // so no merge fires even though the union (3 keys) would fit — the
  // hysteresis that keeps steady-state half-full chunks from
  // split/merge thrash.
  ASSERT_TRUE(List.remove(10));
  EXPECT_EQ(List.chunkCountSlow(), 2u);
  EXPECT_TRUE(List.checkInvariants());
  if (stats::Enabled) {
    const stats::Snapshot D = stats::snapshotAll().delta(Before);
    EXPECT_EQ(D.get(stats::Counter::ChunkMerges), 0u);
  }
}

TEST(VblChunkListTest, ConcurrentChurnKeepsInvariants) {
  VblChunkList<7> List;
  constexpr int Threads = 4;
  constexpr uint64_t Range = 256;
  std::vector<std::thread> Workers;
  for (int T = 0; T != Threads; ++T) {
    Workers.emplace_back([&, T] {
      Xoshiro256 Rng(0xabcdULL + static_cast<uint64_t>(T));
      for (int I = 0; I != 20000; ++I) {
        const SetKey Key = static_cast<SetKey>(Rng.nextBounded(Range)) + 1;
        switch (Rng.nextBounded(4)) {
        case 0:
          List.insert(Key);
          break;
        case 1:
          List.remove(Key);
          break;
        default:
          List.contains(Key);
          break;
        }
      }
    });
  }
  for (auto &W : Workers)
    W.join();
  EXPECT_TRUE(List.checkInvariants());
  // Quiesced: membership must be internally consistent.
  const std::vector<SetKey> Snap = List.snapshot();
  for (SetKey Key : Snap)
    EXPECT_TRUE(List.contains(Key));
}

} // namespace
