//===- tests/lists/SkipListTest.cpp - Lazy skip list specifics -----------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Skip-list-specific properties (the shared registry battery covers
/// the set semantics): tower structure, level distribution, logarithmic
/// search behaviour, and removal discipline through TrackingDomain.
///
//===----------------------------------------------------------------------===//

#include "lists/LazySkipList.h"

#include "reclaim/TrackingDomain.h"
#include "support/Barrier.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace vbl;

TEST(LazySkipList, LargeSequentialWorkload) {
  LazySkipList<> Set;
  constexpr SetKey N = 20000;
  for (SetKey Key = 0; Key != N; ++Key)
    ASSERT_TRUE(Set.insert(Key * 7 % N)) << Key;
  EXPECT_EQ(Set.sizeSlow(), static_cast<size_t>(N));
  EXPECT_TRUE(Set.checkInvariants());
  for (SetKey Key = 0; Key != N; ++Key)
    ASSERT_TRUE(Set.contains(Key));
  for (SetKey Key = 0; Key != N; Key += 2)
    ASSERT_TRUE(Set.remove(Key));
  EXPECT_EQ(Set.sizeSlow(), static_cast<size_t>(N / 2));
  EXPECT_TRUE(Set.checkInvariants());
}

TEST(LazySkipList, SnapshotSorted) {
  LazySkipList<> Set;
  for (SetKey Key : {9, 1, 77, 23, 4})
    EXPECT_TRUE(Set.insert(Key));
  EXPECT_EQ(Set.snapshot(), (std::vector<SetKey>{1, 4, 9, 23, 77}));
}

TEST(LazySkipList, TowersAreSubsequences) {
  // checkInvariants verifies every level is sorted and terminates;
  // exercise it with enough volume that multi-level towers exist.
  LazySkipList<> Set;
  Xoshiro256 Rng(8);
  for (int I = 0; I != 5000; ++I)
    Set.insert(static_cast<SetKey>(Rng.nextBounded(1 << 20)));
  EXPECT_TRUE(Set.checkInvariants());
}

TEST(LazySkipList, ConcurrentAccounting) {
  LazySkipList<> Set;
  constexpr unsigned NumThreads = 4;
  SpinBarrier Barrier(NumThreads);
  std::atomic<long> Balance{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(31 + T);
      long Local = 0;
      Barrier.arriveAndWait();
      for (int I = 0; I != 20000; ++I) {
        const SetKey Key = static_cast<SetKey>(Rng.nextBounded(64));
        if (Rng.nextPercent(50))
          Local += Set.insert(Key);
        else
          Local -= Set.remove(Key);
      }
      Balance.fetch_add(Local, std::memory_order_relaxed);
    });
  }
  for (auto &Thread : Threads)
    Thread.join();
  EXPECT_EQ(static_cast<long>(Set.sizeSlow()), Balance.load());
  EXPECT_TRUE(Set.checkInvariants());
}

TEST(LazySkipList, SingleRetirePerRemovedTower) {
  LazySkipList<reclaim::TrackingDomain> Set;
  constexpr unsigned NumThreads = 4;
  SpinBarrier Barrier(NumThreads);
  std::atomic<long> Removals{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(53 + T);
      long Local = 0;
      Barrier.arriveAndWait();
      for (int I = 0; I != 15000; ++I) {
        const SetKey Key = static_cast<SetKey>(Rng.nextBounded(16));
        if (Rng.nextPercent(50))
          Set.insert(Key);
        else
          Local += Set.remove(Key);
      }
      Removals.fetch_add(Local, std::memory_order_relaxed);
    });
  }
  for (auto &Thread : Threads)
    Thread.join();
  EXPECT_FALSE(Set.reclaimDomain().sawDoubleRetire());
  EXPECT_EQ(Set.reclaimDomain().retiredCount(),
            static_cast<uint64_t>(Removals.load()));
  EXPECT_TRUE(Set.checkInvariants());
}

TEST(LazySkipList, FailedInsertTakesNoLockEvenUnderChurn) {
  // The decide-before-lock behaviour: with key 5 permanently present,
  // failing inserts of 5 must complete while another thread churns
  // neighbouring keys (if they took locks they would at least
  // serialize; here we assert they terminate promptly and correctly).
  LazySkipList<> Set;
  ASSERT_TRUE(Set.insert(5));
  std::atomic<bool> Stop{false};
  std::thread Churner([&] {
    while (!Stop.load(std::memory_order_acquire)) {
      Set.insert(4);
      Set.remove(4);
      Set.insert(6);
      Set.remove(6);
    }
  });
  for (int I = 0; I != 30000; ++I)
    ASSERT_FALSE(Set.insert(5));
  Stop.store(true, std::memory_order_release);
  Churner.join();
  EXPECT_TRUE(Set.contains(5));
  EXPECT_TRUE(Set.checkInvariants());
}

TEST(LazySkipList, ReinsertionAfterRemovalReusesNothing) {
  LazySkipList<> Set;
  for (int Round = 0; Round != 1000; ++Round) {
    ASSERT_TRUE(Set.insert(11));
    ASSERT_TRUE(Set.contains(11));
    ASSERT_TRUE(Set.remove(11));
    ASSERT_FALSE(Set.contains(11));
  }
  Set.reclaimDomain().collectAll();
  EXPECT_GT(Set.reclaimDomain().freedCount(), 0u);
}
