//===- tests/lists/ChaosStressTest.cpp - Delay-injected stress -----------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Stress under ChaosPolicy: random pauses before every shared access
/// blow every race window wide open. The algorithms under fuzzing are
/// the three the paper evaluates (VBL, Lazy, Harris-Michael) plus the
/// VBL ablation variants; oracles are per-key accounting, structural
/// invariants, and retire-exactly-once via the TrackingDomain.
///
//===----------------------------------------------------------------------===//

#include "core/VblList.h"
#include "lists/HarrisMichaelList.h"
#include "lists/LazyList.h"
#include "reclaim/TrackingDomain.h"
#include "support/Barrier.h"
#include "support/Random.h"
#include "sync/ChaosPolicy.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace vbl;

namespace {

template <class ListT>
void chaosAccountingStress(ListT &List, unsigned NumThreads, int Ops,
                           SetKey Range, uint64_t Seed) {
  SpinBarrier Barrier(NumThreads);
  std::atomic<long> Balance{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(Seed + T);
      long Local = 0;
      Barrier.arriveAndWait();
      for (int I = 0; I != Ops; ++I) {
        const SetKey Key = static_cast<SetKey>(
            Rng.nextBounded(static_cast<uint64_t>(Range)));
        switch (Rng.nextBounded(3)) {
        case 0:
          Local += List.insert(Key);
          break;
        case 1:
          Local -= List.remove(Key);
          break;
        default:
          List.contains(Key);
          break;
        }
      }
      Balance.fetch_add(Local, std::memory_order_relaxed);
    });
  }
  for (auto &Thread : Threads)
    Thread.join();
  EXPECT_EQ(static_cast<long>(List.sizeSlow()), Balance.load());
  EXPECT_TRUE(List.checkInvariants());
}

} // namespace

TEST(ChaosStress, VblTinyRange) {
  VblList<reclaim::EpochDomain, ChaosPolicy> List;
  chaosAccountingStress(List, 4, 8000, 4, 11);
}

TEST(ChaosStress, VblWiderRange) {
  VblList<reclaim::EpochDomain, ChaosPolicy> List;
  chaosAccountingStress(List, 4, 8000, 64, 13);
}

TEST(ChaosStress, VblNodeAwareVariant) {
  VblList<reclaim::EpochDomain, ChaosPolicy, TasLock, true, false> List;
  chaosAccountingStress(List, 4, 8000, 8, 17);
}

TEST(ChaosStress, VblHeadRestartVariant) {
  VblList<reclaim::EpochDomain, ChaosPolicy, TasLock, false, true> List;
  chaosAccountingStress(List, 4, 8000, 8, 19);
}

TEST(ChaosStress, Lazy) {
  LazyList<reclaim::EpochDomain, ChaosPolicy> List;
  chaosAccountingStress(List, 4, 8000, 8, 23);
}

TEST(ChaosStress, HarrisMichael) {
  HarrisMichaelList<reclaim::EpochDomain, ChaosPolicy> List;
  chaosAccountingStress(List, 4, 8000, 8, 29);
}

TEST(ChaosStress, VblRetireDiscipline) {
  VblList<reclaim::TrackingDomain, ChaosPolicy> List;
  chaosAccountingStress(List, 4, 6000, 4, 31);
  EXPECT_FALSE(List.reclaimDomain().sawDoubleRetire());
}

TEST(ChaosStress, HarrisMichaelRetireDiscipline) {
  HarrisMichaelList<reclaim::TrackingDomain, ChaosPolicy> List;
  chaosAccountingStress(List, 4, 6000, 4, 37);
  EXPECT_FALSE(List.reclaimDomain().sawDoubleRetire());
}
