//===- tests/lists/HarrisMichaelHpTest.cpp - HP-integrated HM tests ------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Tests specific to the hazard-pointer Harris-Michael variant: besides
/// set semantics (already covered by the shared registry battery), the
/// HP-specific property is that memory is actually recycled *during*
/// the run with bounded garbage — something the epoch variant cannot
/// promise when a reader stalls.
///
//===----------------------------------------------------------------------===//

#include "lists/HarrisMichaelListHp.h"

#include "support/Barrier.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace vbl;

TEST(HarrisMichaelHp, BasicSemantics) {
  HarrisMichaelListHp List;
  EXPECT_FALSE(List.contains(5));
  EXPECT_TRUE(List.insert(5));
  EXPECT_FALSE(List.insert(5));
  EXPECT_TRUE(List.contains(5));
  EXPECT_TRUE(List.remove(5));
  EXPECT_FALSE(List.remove(5));
  EXPECT_TRUE(List.checkInvariants());
}

TEST(HarrisMichaelHp, ReclaimsDuringTheRun) {
  HarrisMichaelListHp List;
  // Far more toggles than the scan threshold: most retirements must be
  // freed while the test is still running.
  for (int I = 0; I != 20000; ++I) {
    ASSERT_TRUE(List.insert(7));
    ASSERT_TRUE(List.remove(7));
  }
  auto &Domain = List.reclaimDomain();
  EXPECT_GT(Domain.retiredCount(), 19000u);
  EXPECT_GT(Domain.freedCount(), Domain.retiredCount() / 2)
      << "hazard-pointer scans must recycle garbage during the run";
}

TEST(HarrisMichaelHp, BoundedGarbageUnderChurn) {
  HarrisMichaelListHp List;
  for (int I = 0; I != 50000; ++I) {
    List.insert(static_cast<SetKey>(I % 64));
    List.remove(static_cast<SetKey>((I + 32) % 64));
  }
  auto &Domain = List.reclaimDomain();
  // Unfreed garbage is bounded by the scan threshold plus protected
  // slots — far below the retirement volume.
  EXPECT_LT(Domain.retiredCount() - Domain.freedCount(), 512u);
}

TEST(HarrisMichaelHp, ConcurrentAccountingAndSafety) {
  HarrisMichaelListHp List;
  constexpr unsigned NumThreads = 4;
  SpinBarrier Barrier(NumThreads);
  std::atomic<long> Balance{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(17 + T);
      long Local = 0;
      Barrier.arriveAndWait();
      for (int I = 0; I != 30000; ++I) {
        const SetKey Key = static_cast<SetKey>(Rng.nextBounded(8));
        switch (Rng.nextBounded(3)) {
        case 0:
          Local += List.insert(Key);
          break;
        case 1:
          Local -= List.remove(Key);
          break;
        default:
          List.contains(Key);
          break;
        }
      }
      Balance.fetch_add(Local, std::memory_order_relaxed);
    });
  }
  for (auto &Thread : Threads)
    Thread.join();
  EXPECT_EQ(static_cast<long>(List.sizeSlow()), Balance.load());
  EXPECT_TRUE(List.checkInvariants());
}

TEST(HarrisMichaelHp, ReaderNeverSeesRecycledNode) {
  // Heavy remove/insert churn of one key while readers hammer
  // contains: any use-after-free would trip ASan-less too via the
  // val/next invariant checks inside contains' find loop.
  HarrisMichaelListHp List;
  for (SetKey Key = 0; Key != 8; ++Key)
    List.insert(Key);
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Readers;
  for (int T = 0; T != 2; ++T) {
    Readers.emplace_back([&, T] {
      Xoshiro256 Rng(100 + T);
      while (!Stop.load(std::memory_order_acquire))
        List.contains(static_cast<SetKey>(Rng.nextBounded(8)));
    });
  }
  std::thread Writer([&] {
    for (int I = 0; I != 30000; ++I) {
      List.remove(static_cast<SetKey>(I % 8));
      List.insert(static_cast<SetKey>(I % 8));
    }
    Stop.store(true, std::memory_order_release);
  });
  Writer.join();
  for (auto &Reader : Readers)
    Reader.join();
  EXPECT_TRUE(List.checkInvariants());
}
