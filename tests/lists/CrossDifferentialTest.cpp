//===- tests/lists/CrossDifferentialTest.cpp - All algorithms agree ------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Differential testing across the whole registry: the same operation
/// sequence must produce bit-identical result sequences on every
/// algorithm (they all implement the same sequential set type). Any
/// divergence pinpoints the first differing operation. Parameterized
/// over seeds and key ranges as a property-style sweep.
///
//===----------------------------------------------------------------------===//

#include "lists/SequentialList.h"
#include "lists/SetInterface.h"
#include "support/Random.h"

#include <vector>

#include <gtest/gtest.h>

using namespace vbl;

namespace {

struct SweepCase {
  uint64_t Seed;
  SetKey KeyRange;
  int Ops;
};

class CrossDifferentialTest
    : public ::testing::TestWithParam<SweepCase> {};

struct OpRecord {
  SetOp Op;
  SetKey Key;
  SetKey KeyHi = 0;
  bool Result;
  std::vector<SetKey> Keys; // RangeQuery only: the reference answer
};

std::vector<OpRecord> generateReference(const SweepCase &Case) {
  SequentialList<> Reference;
  Xoshiro256 Rng(Case.Seed);
  std::vector<OpRecord> Trace;
  Trace.reserve(static_cast<size_t>(Case.Ops));
  for (int I = 0; I != Case.Ops; ++I) {
    const SetKey Key = static_cast<SetKey>(
        Rng.nextBounded(static_cast<uint64_t>(Case.KeyRange)));
    OpRecord Record;
    Record.Key = Key;
    switch (Rng.nextBounded(4)) {
    case 0:
      Record.Op = SetOp::Insert;
      Record.Result = Reference.insert(Key);
      break;
    case 1:
      Record.Op = SetOp::Remove;
      Record.Result = Reference.remove(Key);
      break;
    case 2:
      Record.Op = SetOp::Contains;
      Record.Result = Reference.contains(Key);
      break;
    default:
      Record.Op = SetOp::RangeQuery;
      Record.KeyHi = Key + Rng.nextBounded(
                               static_cast<uint64_t>(Case.KeyRange) / 4 + 2);
      Record.Result =
          Reference.rangeQuery(Key, Record.KeyHi, Record.Keys) != 0;
      break;
    }
    Trace.push_back(Record);
  }
  return Trace;
}

} // namespace

TEST_P(CrossDifferentialTest, EveryAlgorithmMatchesTheSpec) {
  const SweepCase &Case = GetParam();
  const std::vector<OpRecord> Reference = generateReference(Case);

  for (const std::string &Algo : registeredSetNames()) {
    auto Set = makeSet(Algo);
    ASSERT_NE(Set, nullptr);
    for (size_t I = 0; I != Reference.size(); ++I) {
      const OpRecord &Expected = Reference[I];
      bool Got = false;
      switch (Expected.Op) {
      case SetOp::Insert:
        Got = Set->insert(Expected.Key);
        break;
      case SetOp::Remove:
        Got = Set->remove(Expected.Key);
        break;
      case SetOp::Contains:
        Got = Set->contains(Expected.Key);
        break;
      case SetOp::RangeQuery: {
        std::vector<SetKey> Keys;
        Got = Set->rangeQuery(Expected.Key, Expected.KeyHi, Keys) != 0;
        ASSERT_EQ(Keys, Expected.Keys)
            << Algo << " scan diverges from LL at op " << I << ": ["
            << Expected.Key << ", " << Expected.KeyHi << "]";
        break;
      }
      }
      ASSERT_EQ(Got, Expected.Result)
          << Algo << " diverges from LL at op " << I << ": "
          << setOpName(Expected.Op) << "(" << Expected.Key << ")";
    }
    // Full-set scan must agree with the quiescent snapshot.
    std::vector<SetKey> Scanned;
    Set->snapshot(Scanned);
    EXPECT_EQ(Scanned, Set->snapshot()) << Algo;
    EXPECT_TRUE(Set->checkInvariants()) << Algo;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrossDifferentialTest,
    ::testing::Values(SweepCase{1, 4, 3000},      // tiny, hot
                      SweepCase{2, 32, 5000},     // small
                      SweepCase{3, 512, 5000},    // medium
                      SweepCase{4, 8192, 4000},   // sparse
                      SweepCase{5, 2, 2000},      // two keys only
                      SweepCase{6, 100000, 2000}, // mostly misses
                      SweepCase{7, 64, 8000}),    // long toggle mix
    [](const ::testing::TestParamInfo<SweepCase> &Info) {
      return "seed" + std::to_string(Info.param.Seed) + "_range" +
             std::to_string(Info.param.KeyRange);
    });
