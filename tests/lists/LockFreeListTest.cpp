//===- tests/lists/LockFreeListTest.cpp - Harris / HM specifics ----------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Tests specific to the two lock-free lists: delegated physical
/// unlinking, mark-bit semantics through the type-erased API, and the
/// single-retire discipline under the TrackingDomain (the property the
/// HarrisList snip-adjacency argument promises).
///
//===----------------------------------------------------------------------===//

#include "lists/HarrisList.h"
#include "lists/HarrisMichaelList.h"

#include "reclaim/TrackingDomain.h"
#include "support/Barrier.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace vbl;

template <class ListT> class LockFreeListTest : public ::testing::Test {};

using LockFreeTypes =
    ::testing::Types<HarrisMichaelList<reclaim::TrackingDomain>,
                     HarrisList<reclaim::TrackingDomain>>;
TYPED_TEST_SUITE(LockFreeListTest, LockFreeTypes);

TYPED_TEST(LockFreeListTest, SingleRetirePerRemovedNode) {
  TypeParam List;
  constexpr unsigned NumThreads = 4;
  SpinBarrier Barrier(NumThreads);
  std::atomic<long> Removals{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(13 + T);
      long Local = 0;
      Barrier.arriveAndWait();
      for (int I = 0; I != 20000; ++I) {
        const SetKey Key = static_cast<SetKey>(Rng.nextBounded(8));
        if (Rng.nextPercent(50))
          List.insert(Key);
        else
          Local += List.remove(Key);
      }
      Removals.fetch_add(Local, std::memory_order_relaxed);
    });
  }
  for (auto &Thread : Threads)
    Thread.join();
  EXPECT_FALSE(List.reclaimDomain().sawDoubleRetire())
      << "double physical unlink of one node";
  EXPECT_TRUE(List.checkInvariants());
}

TYPED_TEST(LockFreeListTest, EveryRemovalEventuallyRetires) {
  // After quiescence, a full traversal (via insert of a max key, which
  // walks the whole list and unlinks marked nodes) must leave the
  // retire tally equal to the removal tally: no node lost.
  TypeParam List;
  long Removals = 0;
  Xoshiro256 Rng(99);
  for (int I = 0; I != 40000; ++I) {
    const SetKey Key = static_cast<SetKey>(Rng.nextBounded(64));
    if (Rng.nextPercent(50))
      List.insert(Key);
    else
      Removals += List.remove(Key);
  }
  // Sweep: a remove of a guaranteed-present far key walks past every
  // marked node and unlinks it.
  List.insert(1000000);
  List.remove(1000000);
  ++Removals; // The sweep key itself was removed.
  EXPECT_EQ(List.reclaimDomain().retiredCount(),
            static_cast<uint64_t>(Removals));
  EXPECT_FALSE(List.reclaimDomain().sawDoubleRetire());
}

TYPED_TEST(LockFreeListTest, ContainsIgnoresMarkedNode) {
  // Single-threaded we cannot leave a node marked-but-linked via public
  // API (remove always attempts the unlink), but we can check the
  // contract from outside: after remove(v), contains(v) is false even
  // though EBR-style reclamation may keep the node allocated.
  TypeParam List;
  EXPECT_TRUE(List.insert(5));
  EXPECT_TRUE(List.remove(5));
  EXPECT_FALSE(List.contains(5));
  EXPECT_TRUE(List.insert(5));
  EXPECT_TRUE(List.contains(5));
}

TYPED_TEST(LockFreeListTest, HighContentionAccounting) {
  TypeParam List;
  constexpr unsigned NumThreads = 8; // Oversubscribed on small hosts.
  SpinBarrier Barrier(NumThreads);
  std::atomic<long> Balance{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(3 + T);
      long Local = 0;
      Barrier.arriveAndWait();
      for (int I = 0; I != 5000; ++I) {
        const SetKey Key = static_cast<SetKey>(Rng.nextBounded(4));
        if (Rng.nextPercent(50))
          Local += List.insert(Key);
        else
          Local -= List.remove(Key);
      }
      Balance.fetch_add(Local, std::memory_order_relaxed);
    });
  }
  for (auto &Thread : Threads)
    Thread.join();
  EXPECT_EQ(static_cast<long>(List.sizeSlow()), Balance.load());
  EXPECT_TRUE(List.checkInvariants());
}
