//===- tests/lists/CorpusCoverageTest.cpp - Corpus coverage boundary -----===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Pins down which backends the shared scenario corpus (exploration +
/// race/flow oracles) covers, and why the remaining two are excluded:
///
/// TombstoneBst and LazySkipList are NOT policy-parameterized — they
/// have no `Policy` typedef and take no PolicyT template argument, so
/// the deterministic step scheduler cannot mediate their shared
/// accesses (no yield per access means no interleaving enumeration and
/// no per-step flow snapshots). They also expose no headNode()/
/// nodeChain()/flowView(): the BST has no head-to-tail chain at all,
/// and the skip list's multi-level successor arrays do not fit the
/// single-successor flow model (each key would "flow" through every
/// level it is linked at). Bringing them under the corpus means first
/// retrofitting a policy layer — tracked in ROADMAP.md, out of scope
/// here. This test asserts that exclusion premise AT COMPILE TIME, so
/// the moment either structure grows the required surface this test
/// fails and the corpus sweeps must be extended.
///
/// Until then the corpus still covers them at the functional level:
/// every corpus scenario is replayed sequentially (program order,
/// thread 0 first — a valid linearization of the scenario) against a
/// std::set model, checking each op's return value and the final
/// membership over the scenario's key universe.
///
//===----------------------------------------------------------------------===//

#include "lists/LazySkipList.h"
#include "lists/TombstoneBst.h"
#include "reclaim/LeakyDomain.h"

#include "sched/ScenarioCorpus.h"

#include <gtest/gtest.h>

#include <set>

using namespace vbl;
using namespace vbl::sched;

namespace {

using Bst = TombstoneBst<>;
using SkipList = LazySkipList<reclaim::LeakyDomain>;

// The corpus-eligibility surface: a policy typedef for scheduler
// mediation plus the flow oracle's self-description hooks.
template <class T>
constexpr bool HasPolicy = requires { typename T::Policy; };
template <class T>
constexpr bool HasFlowView = requires(T &S) { S.flowView(); };
template <class T>
constexpr bool HasNodeChain = requires(const T &S) { S.nodeChain(); };

// The documented exclusions. If either assert fires, the structure
// gained the surface — wire it into FlowCheckerTest/CleanListsTest and
// delete the corresponding half of this test.
static_assert(!HasPolicy<Bst> && !HasFlowView<Bst> && !HasNodeChain<Bst>,
              "TombstoneBst became corpus-eligible; add it to the "
              "interleaving sweeps");
static_assert(!HasPolicy<SkipList> && !HasFlowView<SkipList> &&
                  !HasNodeChain<SkipList>,
              "LazySkipList became corpus-eligible; add it to the "
              "interleaving sweeps");

/// Replays \p S sequentially (thread 0's program first) against a
/// std::set reference, checking every return value and the final
/// membership over the universe.
template <class SetT> void runSequentialCorpus(const char *SetName) {
  for (const Scenario &S : scenarios()) {
    SetT Impl;
    std::set<SetKey> Model;
    for (SetKey Key : S.Prefill) {
      EXPECT_TRUE(Impl.insert(Key)) << SetName << " / " << S.Name;
      Model.insert(Key);
    }
    for (const auto &Program : S.Programs) {
      for (const auto &[Op, Key, KeyHi] : Program) {
        switch (Op) {
        case SetOp::Insert:
          EXPECT_EQ(Impl.insert(Key), Model.insert(Key).second)
              << SetName << " / " << S.Name << ": insert " << Key;
          break;
        case SetOp::Remove:
          EXPECT_EQ(Impl.remove(Key), Model.erase(Key) > 0)
              << SetName << " / " << S.Name << ": remove " << Key;
          break;
        case SetOp::Contains:
          EXPECT_EQ(Impl.contains(Key), Model.count(Key) > 0)
              << SetName << " / " << S.Name << ": contains " << Key;
          break;
        case SetOp::RangeQuery: {
          std::vector<SetKey> Got;
          Impl.rangeQuery(Key, KeyHi, Got);
          const std::vector<SetKey> Want(Model.lower_bound(Key),
                                         Model.upper_bound(KeyHi));
          EXPECT_EQ(Got, Want) << SetName << " / " << S.Name << ": scan ["
                               << Key << ", " << KeyHi << "]";
          break;
        }
        }
      }
    }
    for (SetKey Key : S.Universe)
      EXPECT_EQ(Impl.contains(Key), Model.count(Key) > 0)
          << SetName << " / " << S.Name << ": final membership of " << Key;
    // The quiescent full-set scan must equal the model verbatim.
    EXPECT_EQ(Impl.snapshot(),
              std::vector<SetKey>(Model.begin(), Model.end()))
        << SetName << " / " << S.Name << ": snapshot";
    std::vector<SetKey> Whole;
    Impl.rangeQuery(MinSentinel + 1, MaxSentinel - 1, Whole);
    EXPECT_EQ(Whole, std::vector<SetKey>(Model.begin(), Model.end()))
        << SetName << " / " << S.Name << ": full-domain rangeQuery";
  }
}

TEST(CorpusCoverageTest, TombstoneBstSequentialCorpus) {
  runSequentialCorpus<Bst>("TombstoneBst");
}

TEST(CorpusCoverageTest, LazySkipListSequentialCorpus) {
  runSequentialCorpus<SkipList>("LazySkipList");
}

} // namespace
