//===- tests/lists/TombstoneBstTest.cpp - Tree decide-before-lock --------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Tree-specific tests (set semantics are covered by the shared
/// registry batteries): decide-before-lock behaviour for no-op updates,
/// node uniqueness under racing inserts, tombstone revival, and shape
/// invariants.
///
//===----------------------------------------------------------------------===//

#include "lists/TombstoneBst.h"

#include "support/Barrier.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace vbl;

TEST(TombstoneBst, TombstoneRevival) {
  TombstoneBst<> Tree;
  EXPECT_TRUE(Tree.insert(5));
  EXPECT_TRUE(Tree.remove(5));
  EXPECT_FALSE(Tree.contains(5));
  // Reinsert revives the tombstone in place rather than adding a node.
  EXPECT_TRUE(Tree.insert(5));
  EXPECT_TRUE(Tree.contains(5));
  EXPECT_EQ(Tree.snapshot(), (std::vector<SetKey>{5}));
}

TEST(TombstoneBst, InorderIsSorted) {
  TombstoneBst<> Tree;
  Xoshiro256 Rng(4);
  for (int I = 0; I != 3000; ++I)
    Tree.insert(static_cast<SetKey>(Rng.nextBounded(1 << 20)) -
                (1 << 19)); // Mix of negative and positive keys.
  const std::vector<SetKey> Keys = Tree.snapshot();
  for (size_t I = 1; I < Keys.size(); ++I)
    ASSERT_LT(Keys[I - 1], Keys[I]);
  EXPECT_TRUE(Tree.checkInvariants());
}

TEST(TombstoneBst, RacingInsertsCreateOneWinner) {
  // All threads hammer insert/remove of the same key; per-key
  // accounting must stay exact (node uniqueness + state serialization).
  TombstoneBst<> Tree;
  constexpr unsigned NumThreads = 4;
  SpinBarrier Barrier(NumThreads);
  std::atomic<long> Balance{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(41 + T);
      long Local = 0;
      Barrier.arriveAndWait();
      for (int I = 0; I != 20000; ++I) {
        if (Rng.nextPercent(50))
          Local += Tree.insert(7);
        else
          Local -= Tree.remove(7);
      }
      Balance.fetch_add(Local, std::memory_order_relaxed);
    });
  }
  for (auto &Thread : Threads)
    Thread.join();
  ASSERT_TRUE(Balance.load() == 0 || Balance.load() == 1);
  EXPECT_EQ(Tree.contains(7), Balance.load() == 1);
  EXPECT_LE(Tree.sizeSlow(), 1u);
  EXPECT_TRUE(Tree.checkInvariants());
}

TEST(TombstoneBst, ConcurrentMixedAccounting) {
  TombstoneBst<> Tree;
  constexpr unsigned NumThreads = 4;
  SpinBarrier Barrier(NumThreads);
  std::atomic<long> Balance{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(61 + T);
      long Local = 0;
      Barrier.arriveAndWait();
      for (int I = 0; I != 20000; ++I) {
        const SetKey Key = static_cast<SetKey>(Rng.nextBounded(64));
        if (Rng.nextPercent(50))
          Local += Tree.insert(Key);
        else
          Local -= Tree.remove(Key);
      }
      Balance.fetch_add(Local, std::memory_order_relaxed);
    });
  }
  for (auto &Thread : Threads)
    Thread.join();
  EXPECT_EQ(static_cast<long>(Tree.sizeSlow()), Balance.load());
  EXPECT_TRUE(Tree.checkInvariants());
}

TEST(TombstoneBst, FailedUpdatesCompleteUnderPermanentChurn) {
  // Key 9 stays present; failing inserts of 9 decide lock-free while a
  // churner toggles neighbours (the VBL rule in a tree).
  TombstoneBst<> Tree;
  ASSERT_TRUE(Tree.insert(9));
  std::atomic<bool> Stop{false};
  std::thread Churner([&] {
    while (!Stop.load(std::memory_order_acquire)) {
      Tree.insert(8);
      Tree.remove(8);
      Tree.insert(10);
      Tree.remove(10);
    }
  });
  for (int I = 0; I != 50000; ++I) {
    ASSERT_FALSE(Tree.insert(9));
    ASSERT_FALSE(Tree.remove(12345 + I % 7)); // Absent: also lock-free.
  }
  Stop.store(true, std::memory_order_release);
  Churner.join();
  EXPECT_TRUE(Tree.contains(9));
  EXPECT_TRUE(Tree.checkInvariants());
}
