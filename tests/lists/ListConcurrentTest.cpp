//===- tests/lists/ListConcurrentTest.cpp - Concurrent stress battery ----===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Concurrency stress tests parameterized over every registered
/// algorithm. Correctness oracles used:
///
///  - Per-key accounting: for each key, (successful inserts) minus
///    (successful removes) must equal the key's final presence (0 or 1).
///    Any linearizable set satisfies this; a lost update breaks it.
///  - Structural invariants after quiescence.
///  - Two-phase disjoint workloads with exact expected outcomes.
///
//===----------------------------------------------------------------------===//

#include "lists/SetInterface.h"

#include "support/Barrier.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace vbl;

namespace {

struct StressCase {
  std::string Algo;
  unsigned Threads;
  SetKey KeyRange;
};

std::vector<StressCase> allStressCases() {
  std::vector<StressCase> Cases;
  for (const std::string &Algo : registeredSetNames()) {
    // Small range = heavy contention; large range = mostly disjoint.
    Cases.push_back({Algo, 4, 8});
    Cases.push_back({Algo, 4, 512});
  }
  return Cases;
}

class ListStressTest : public ::testing::TestWithParam<StressCase> {};

std::string stressCaseName(
    const ::testing::TestParamInfo<StressCase> &Info) {
  std::string Name = Info.param.Algo + "_t" +
                     std::to_string(Info.param.Threads) + "_r" +
                     std::to_string(Info.param.KeyRange);
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

} // namespace

TEST_P(ListStressTest, PerKeyAccountingHolds) {
  const StressCase &Case = GetParam();
  auto Set = makeSet(Case.Algo);
  ASSERT_NE(Set, nullptr);

  constexpr int OpsPerThread = 20000;
  const auto Range = static_cast<uint64_t>(Case.KeyRange);

  // Per-thread, per-key success tallies; merged after the run.
  struct Tally {
    std::vector<long> Inserts, Removes;
  };
  std::vector<Tally> Tallies(Case.Threads);
  SpinBarrier Barrier(Case.Threads);

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != Case.Threads; ++T) {
    Threads.emplace_back([&, T] {
      Tally &Mine = Tallies[T];
      Mine.Inserts.assign(Range, 0);
      Mine.Removes.assign(Range, 0);
      Xoshiro256 Rng(1000 + T);
      Barrier.arriveAndWait();
      for (int I = 0; I != OpsPerThread; ++I) {
        const SetKey Key = static_cast<SetKey>(Rng.nextBounded(Range));
        switch (Rng.nextBounded(3)) {
        case 0:
          Mine.Inserts[Key] += Set->insert(Key);
          break;
        case 1:
          Mine.Removes[Key] += Set->remove(Key);
          break;
        default:
          Set->contains(Key); // Result checked by accounting below.
          break;
        }
      }
    });
  }
  for (auto &Thread : Threads)
    Thread.join();

  ASSERT_TRUE(Set->checkInvariants()) << Case.Algo;
  const std::vector<SetKey> Final = Set->snapshot();
  std::vector<bool> Present(Range, false);
  for (SetKey Key : Final) {
    ASSERT_GE(Key, 0);
    ASSERT_LT(Key, Case.KeyRange);
    Present[static_cast<size_t>(Key)] = true;
  }

  for (uint64_t Key = 0; Key != Range; ++Key) {
    long Inserts = 0, Removes = 0;
    for (const Tally &T : Tallies) {
      Inserts += T.Inserts[Key];
      Removes += T.Removes[Key];
    }
    const long Balance = Inserts - Removes;
    ASSERT_TRUE(Balance == 0 || Balance == 1)
        << Case.Algo << " key " << Key << ": " << Inserts << " inserts vs "
        << Removes << " removes";
    ASSERT_EQ(Balance == 1, static_cast<bool>(Present[Key]))
        << Case.Algo << " key " << Key;
  }
}

TEST_P(ListStressTest, DisjointInsertersThenRemovers) {
  const StressCase &Case = GetParam();
  auto Set = makeSet(Case.Algo);
  ASSERT_NE(Set, nullptr);

  // Phase 1: each thread inserts a disjoint arithmetic progression.
  constexpr SetKey PerThread = 400;
  {
    SpinBarrier Barrier(Case.Threads);
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T != Case.Threads; ++T) {
      Threads.emplace_back([&, T] {
        Barrier.arriveAndWait();
        for (SetKey I = 0; I != PerThread; ++I)
          ASSERT_TRUE(Set->insert(static_cast<SetKey>(I) * Case.Threads + T));
      });
    }
    for (auto &Thread : Threads)
      Thread.join();
  }
  EXPECT_EQ(Set->snapshot().size(),
            static_cast<size_t>(PerThread) * Case.Threads);
  EXPECT_TRUE(Set->checkInvariants());

  // Phase 2: threads remove each other's progressions (shifted by one).
  {
    SpinBarrier Barrier(Case.Threads);
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T != Case.Threads; ++T) {
      Threads.emplace_back([&, T] {
        const unsigned Victim = (T + 1) % Case.Threads;
        Barrier.arriveAndWait();
        for (SetKey I = 0; I != PerThread; ++I)
          ASSERT_TRUE(
              Set->remove(static_cast<SetKey>(I) * Case.Threads + Victim));
      });
    }
    for (auto &Thread : Threads)
      Thread.join();
  }
  EXPECT_TRUE(Set->snapshot().empty());
  EXPECT_TRUE(Set->checkInvariants());
}

TEST_P(ListStressTest, ContendedSingleKeyToggle) {
  // All threads fight over one key; exactly accounting must survive.
  const StressCase &Case = GetParam();
  auto Set = makeSet(Case.Algo);
  ASSERT_NE(Set, nullptr);
  constexpr SetKey Key = 42;
  constexpr int OpsPerThread = 10000;

  std::atomic<long> Inserts{0}, Removes{0};
  SpinBarrier Barrier(Case.Threads);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != Case.Threads; ++T) {
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(77 + T);
      long MyIns = 0, MyRem = 0;
      Barrier.arriveAndWait();
      for (int I = 0; I != OpsPerThread; ++I) {
        if (Rng.nextPercent(50))
          MyIns += Set->insert(Key);
        else
          MyRem += Set->remove(Key);
      }
      Inserts.fetch_add(MyIns, std::memory_order_relaxed);
      Removes.fetch_add(MyRem, std::memory_order_relaxed);
    });
  }
  for (auto &Thread : Threads)
    Thread.join();

  const long Balance = Inserts.load() - Removes.load();
  ASSERT_TRUE(Balance == 0 || Balance == 1) << Case.Algo;
  EXPECT_EQ(Balance == 1, Set->contains(Key)) << Case.Algo;
  EXPECT_TRUE(Set->checkInvariants());
}

INSTANTIATE_TEST_SUITE_P(Registry, ListStressTest,
                         ::testing::ValuesIn(allStressCases()),
                         stressCaseName);
