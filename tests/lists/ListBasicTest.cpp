//===- tests/lists/ListBasicTest.cpp - Shared battery over all lists -----===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// One parameterized battery of single-threaded semantic tests that runs
/// over *every* algorithm in the registry: all of them implement the
/// same set type, so all must pass identically.
///
//===----------------------------------------------------------------------===//

#include "lists/SetInterface.h"

#include "support/Random.h"

#include <gtest/gtest.h>

#include <set>

using namespace vbl;

namespace {

class AllListsTest : public ::testing::TestWithParam<std::string> {
protected:
  void SetUp() override {
    Set = makeSet(GetParam());
    ASSERT_NE(Set, nullptr) << "unknown algorithm " << GetParam();
  }

  std::unique_ptr<ConcurrentSet> Set;
};

} // namespace

TEST_P(AllListsTest, EmptySet) {
  EXPECT_FALSE(Set->contains(1));
  EXPECT_FALSE(Set->remove(1));
  EXPECT_TRUE(Set->snapshot().empty());
  EXPECT_TRUE(Set->checkInvariants());
}

TEST_P(AllListsTest, SingleElementLifecycle) {
  EXPECT_TRUE(Set->insert(10));
  EXPECT_TRUE(Set->contains(10));
  EXPECT_FALSE(Set->insert(10));
  EXPECT_TRUE(Set->remove(10));
  EXPECT_FALSE(Set->contains(10));
  EXPECT_FALSE(Set->remove(10));
  EXPECT_TRUE(Set->checkInvariants());
}

TEST_P(AllListsTest, SnapshotIsSorted) {
  for (SetKey Key : {42, 7, 19, 3, 77, 1})
    EXPECT_TRUE(Set->insert(Key));
  EXPECT_EQ(Set->snapshot(), (std::vector<SetKey>{1, 3, 7, 19, 42, 77}));
}

TEST_P(AllListsTest, ReinsertAfterRemove) {
  EXPECT_TRUE(Set->insert(5));
  EXPECT_TRUE(Set->remove(5));
  EXPECT_TRUE(Set->insert(5));
  EXPECT_TRUE(Set->contains(5));
  EXPECT_EQ(Set->snapshot(), (std::vector<SetKey>{5}));
}

TEST_P(AllListsTest, NeighbouringKeysAreIndependent) {
  EXPECT_TRUE(Set->insert(10));
  EXPECT_TRUE(Set->insert(11));
  EXPECT_TRUE(Set->insert(12));
  EXPECT_TRUE(Set->remove(11));
  EXPECT_TRUE(Set->contains(10));
  EXPECT_FALSE(Set->contains(11));
  EXPECT_TRUE(Set->contains(12));
}

TEST_P(AllListsTest, NegativeKeys) {
  EXPECT_TRUE(Set->insert(-100));
  EXPECT_TRUE(Set->insert(100));
  EXPECT_TRUE(Set->insert(0));
  EXPECT_EQ(Set->snapshot(), (std::vector<SetKey>{-100, 0, 100}));
  EXPECT_TRUE(Set->remove(-100));
  EXPECT_FALSE(Set->contains(-100));
}

TEST_P(AllListsTest, ExtremeUserKeys) {
  EXPECT_TRUE(Set->insert(MinSentinel + 1));
  EXPECT_TRUE(Set->insert(MaxSentinel - 1));
  EXPECT_TRUE(Set->contains(MinSentinel + 1));
  EXPECT_TRUE(Set->contains(MaxSentinel - 1));
  EXPECT_TRUE(Set->remove(MinSentinel + 1));
  EXPECT_TRUE(Set->remove(MaxSentinel - 1));
  EXPECT_TRUE(Set->checkInvariants());
}

TEST_P(AllListsTest, AscendingInsertDescendingRemove) {
  for (SetKey Key = 0; Key != 64; ++Key)
    EXPECT_TRUE(Set->insert(Key));
  for (SetKey Key = 63; Key >= 0; --Key)
    EXPECT_TRUE(Set->remove(Key));
  EXPECT_TRUE(Set->snapshot().empty());
  EXPECT_TRUE(Set->checkInvariants());
}

TEST_P(AllListsTest, DescendingInsertAscendingRemove) {
  for (SetKey Key = 63; Key >= 0; --Key)
    EXPECT_TRUE(Set->insert(Key));
  for (SetKey Key = 0; Key != 64; ++Key)
    EXPECT_TRUE(Set->remove(Key));
  EXPECT_TRUE(Set->snapshot().empty());
}

TEST_P(AllListsTest, DifferentialAgainstStdSet) {
  std::set<SetKey> Oracle;
  Xoshiro256 Rng(555);
  for (int I = 0; I != 10000; ++I) {
    const SetKey Key = static_cast<SetKey>(Rng.nextBounded(48));
    switch (Rng.nextBounded(3)) {
    case 0:
      ASSERT_EQ(Set->insert(Key), Oracle.insert(Key).second) << "op " << I;
      break;
    case 1:
      ASSERT_EQ(Set->remove(Key), Oracle.erase(Key) == 1) << "op " << I;
      break;
    default:
      ASSERT_EQ(Set->contains(Key), Oracle.count(Key) == 1) << "op " << I;
      break;
    }
  }
  EXPECT_EQ(Set->snapshot(),
            std::vector<SetKey>(Oracle.begin(), Oracle.end()));
  EXPECT_TRUE(Set->checkInvariants());
}

TEST_P(AllListsTest, NameMatchesRegistry) {
  EXPECT_EQ(Set->name(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Registry, AllListsTest, ::testing::ValuesIn(registeredSetNames()),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      std::string Name = Info.param;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });
