//===- tests/lists/SequentialListTest.cpp - LL spec tests ----------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "lists/SequentialList.h"

#include "support/Random.h"

#include <gtest/gtest.h>

#include <set>

using namespace vbl;

TEST(SequentialList, EmptyContainsNothing) {
  SequentialList<> List;
  EXPECT_FALSE(List.contains(1));
  EXPECT_FALSE(List.contains(-5));
  EXPECT_EQ(List.sizeSlow(), 0u);
  EXPECT_TRUE(List.checkInvariants());
}

TEST(SequentialList, InsertThenContains) {
  SequentialList<> List;
  EXPECT_TRUE(List.insert(5));
  EXPECT_TRUE(List.contains(5));
  EXPECT_FALSE(List.contains(4));
  EXPECT_FALSE(List.contains(6));
}

TEST(SequentialList, DuplicateInsertFails) {
  SequentialList<> List;
  EXPECT_TRUE(List.insert(7));
  EXPECT_FALSE(List.insert(7));
  EXPECT_EQ(List.sizeSlow(), 1u);
}

TEST(SequentialList, RemovePresentAndAbsent) {
  SequentialList<> List;
  EXPECT_FALSE(List.remove(3));
  EXPECT_TRUE(List.insert(3));
  EXPECT_TRUE(List.remove(3));
  EXPECT_FALSE(List.remove(3));
  EXPECT_FALSE(List.contains(3));
}

TEST(SequentialList, KeepsSortedOrder) {
  SequentialList<> List;
  for (SetKey Key : {5, 1, 9, 3, 7})
    EXPECT_TRUE(List.insert(Key));
  EXPECT_EQ(List.snapshot(), (std::vector<SetKey>{1, 3, 5, 7, 9}));
  EXPECT_TRUE(List.checkInvariants());
}

TEST(SequentialList, NegativeAndExtremeUserKeys) {
  SequentialList<> List;
  EXPECT_TRUE(List.insert(MinSentinel + 1));
  EXPECT_TRUE(List.insert(MaxSentinel - 1));
  EXPECT_TRUE(List.insert(0));
  EXPECT_TRUE(List.contains(MinSentinel + 1));
  EXPECT_TRUE(List.contains(MaxSentinel - 1));
  EXPECT_EQ(List.sizeSlow(), 3u);
}

TEST(SequentialList, DifferentialAgainstStdSet) {
  SequentialList<> List;
  std::set<SetKey> Oracle;
  Xoshiro256 Rng(2024);
  for (int I = 0; I != 20000; ++I) {
    const SetKey Key = static_cast<SetKey>(Rng.nextBounded(64));
    switch (Rng.nextBounded(3)) {
    case 0:
      EXPECT_EQ(List.insert(Key), Oracle.insert(Key).second);
      break;
    case 1:
      EXPECT_EQ(List.remove(Key), Oracle.erase(Key) == 1);
      break;
    default:
      EXPECT_EQ(List.contains(Key), Oracle.count(Key) == 1);
      break;
    }
  }
  EXPECT_EQ(List.snapshot(),
            std::vector<SetKey>(Oracle.begin(), Oracle.end()));
  EXPECT_TRUE(List.checkInvariants());
}

TEST(SequentialList, RemoveHeadMiddleTailOfRun) {
  SequentialList<> List;
  for (SetKey Key = 1; Key <= 5; ++Key)
    List.insert(Key);
  EXPECT_TRUE(List.remove(1)); // first
  EXPECT_TRUE(List.remove(3)); // middle
  EXPECT_TRUE(List.remove(5)); // last
  EXPECT_EQ(List.snapshot(), (std::vector<SetKey>{2, 4}));
  EXPECT_TRUE(List.checkInvariants());
}
