//===- tests/lists/VblListTest.cpp - VBL-specific tests ------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "core/VblList.h"

#include "core/ValueAwareTryLock.h"
#include "reclaim/TrackingDomain.h"
#include "support/Barrier.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace vbl;

//===----------------------------------------------------------------------===//
// ValueAwareTryLock unit tests
//===----------------------------------------------------------------------===//

TEST(ValueAwareTryLock, KeepsLockWhenValidationPasses) {
  ValueAwareTryLock<TasLock> Lock;
  EXPECT_TRUE(
      Lock.acquireIfValid<DirectPolicy>(nullptr, [] { return true; }));
  EXPECT_TRUE(Lock.isLocked());
  Lock.release<DirectPolicy>(nullptr);
  EXPECT_FALSE(Lock.isLocked());
}

TEST(ValueAwareTryLock, ReleasesLockWhenValidationFails) {
  ValueAwareTryLock<TasLock> Lock;
  EXPECT_FALSE(
      Lock.acquireIfValid<DirectPolicy>(nullptr, [] { return false; }));
  EXPECT_FALSE(Lock.isLocked());
}

TEST(ValueAwareTryLock, ValidationRunsUnderTheLock) {
  ValueAwareTryLock<TasLock> Lock;
  bool WasLockedDuringValidation = false;
  EXPECT_TRUE(Lock.acquireIfValid<DirectPolicy>(nullptr, [&] {
    WasLockedDuringValidation = Lock.isLocked();
    return true;
  }));
  EXPECT_TRUE(WasLockedDuringValidation);
  Lock.release<DirectPolicy>(nullptr);
}

TEST(ValueAwareTryLock, SerializesConcurrentHolders) {
  ValueAwareTryLock<TasLock> Lock;
  long Counter = 0;
  std::vector<std::thread> Threads;
  for (int T = 0; T != 4; ++T) {
    Threads.emplace_back([&] {
      for (int I = 0; I != 10000; ++I) {
        while (!Lock.acquireIfValid<DirectPolicy>(nullptr,
                                                  [] { return true; })) {
        }
        ++Counter;
        Lock.release<DirectPolicy>(nullptr);
      }
    });
  }
  for (auto &Thread : Threads)
    Thread.join();
  EXPECT_EQ(Counter, 40000);
}

//===----------------------------------------------------------------------===//
// VBL variant semantics (every knob must preserve set semantics)
//===----------------------------------------------------------------------===//

template <class ListT> class VblVariantTest : public ::testing::Test {};

using VblVariants = ::testing::Types<
    VblList<>,                                                  // default
    VblList<reclaim::EpochDomain, DirectPolicy, TasLock, false, true>,
    VblList<reclaim::EpochDomain, DirectPolicy, TasLock, true, false>,
    VblList<reclaim::EpochDomain, DirectPolicy, TasLock, false, false>,
    VblList<reclaim::EpochDomain, DirectPolicy, TtasLock>,
    VblList<reclaim::EpochDomain, DirectPolicy, TicketLock>,
    VblList<reclaim::TrackingDomain>>;
TYPED_TEST_SUITE(VblVariantTest, VblVariants);

TYPED_TEST(VblVariantTest, BasicSemantics) {
  TypeParam List;
  EXPECT_FALSE(List.contains(3));
  EXPECT_TRUE(List.insert(3));
  EXPECT_FALSE(List.insert(3));
  EXPECT_TRUE(List.contains(3));
  EXPECT_TRUE(List.remove(3));
  EXPECT_FALSE(List.remove(3));
  EXPECT_TRUE(List.checkInvariants());
}

TYPED_TEST(VblVariantTest, SortedSnapshot) {
  TypeParam List;
  for (SetKey Key : {9, 2, 5, 1})
    EXPECT_TRUE(List.insert(Key));
  EXPECT_EQ(List.snapshot(), (std::vector<SetKey>{1, 2, 5, 9}));
}

TYPED_TEST(VblVariantTest, ConcurrentMixedOps) {
  TypeParam List;
  constexpr unsigned NumThreads = 4;
  SpinBarrier Barrier(NumThreads);
  std::atomic<long> Balance{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(T + 1);
      long Local = 0;
      Barrier.arriveAndWait();
      for (int I = 0; I != 10000; ++I) {
        const SetKey Key = static_cast<SetKey>(Rng.nextBounded(16));
        if (Rng.nextPercent(50))
          Local += List.insert(Key);
        else
          Local -= List.remove(Key);
      }
      Balance.fetch_add(Local, std::memory_order_relaxed);
    });
  }
  for (auto &Thread : Threads)
    Thread.join();
  EXPECT_TRUE(List.checkInvariants());
  EXPECT_EQ(static_cast<long>(List.sizeSlow()), Balance.load());
}

//===----------------------------------------------------------------------===//
// Unlink discipline, observed through the TrackingDomain
//===----------------------------------------------------------------------===//

TEST(VblListReclaim, EveryRemovalRetiresExactlyOnce) {
  VblList<reclaim::TrackingDomain> List;
  constexpr unsigned NumThreads = 4;
  SpinBarrier Barrier(NumThreads);
  std::atomic<long> Removals{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(42 + T);
      long Local = 0;
      Barrier.arriveAndWait();
      for (int I = 0; I != 20000; ++I) {
        const SetKey Key = static_cast<SetKey>(Rng.nextBounded(8));
        if (Rng.nextPercent(50))
          List.insert(Key);
        else
          Local += List.remove(Key);
      }
      Removals.fetch_add(Local, std::memory_order_relaxed);
    });
  }
  for (auto &Thread : Threads)
    Thread.join();
  EXPECT_FALSE(List.reclaimDomain().sawDoubleRetire())
      << "a node was physically unlinked twice";
  EXPECT_EQ(List.reclaimDomain().retiredCount(),
            static_cast<uint64_t>(Removals.load()))
      << "retire count must equal successful removals";
  EXPECT_TRUE(List.checkInvariants());
}

TEST(VblListReclaim, EpochDomainFreesUnderChurn) {
  VblList<> List;
  constexpr unsigned NumThreads = 4;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(7 + T);
      for (int I = 0; I != 30000; ++I) {
        const SetKey Key = static_cast<SetKey>(Rng.nextBounded(32));
        if (Rng.nextPercent(50))
          List.insert(Key);
        else
          List.remove(Key);
      }
    });
  }
  for (auto &Thread : Threads)
    Thread.join();
  List.reclaimDomain().collectAll();
  // Churn at threshold 128 must have recycled the bulk of retirements.
  EXPECT_GT(List.reclaimDomain().freedCount(), 0u);
  EXPECT_EQ(List.reclaimDomain().freedCount(),
            List.reclaimDomain().retiredCount());
  EXPECT_TRUE(List.checkInvariants());
}

//===----------------------------------------------------------------------===//
// The headline behavioural property: a failing insert takes no lock
//===----------------------------------------------------------------------===//

TEST(VblListOptimality, FailingInsertIgnoresHeldLocks) {
  // Fig. 2 scenario, realized with real threads: thread A holds every
  // node lock in the list (simulating a stalled update); a VBL insert
  // of a *present* key must still complete, because it decides from
  // values alone. (The same scenario against LazyList would deadlock;
  // it is exercised under the deterministic scheduler instead — see
  // sched tests — where blocking is observable rather than fatal.)
  VblList<> List;
  ASSERT_TRUE(List.insert(1));

  // Simulate the stalled lock holder with a raw second list handle: we
  // cannot reach node locks from outside, so instead stall a *remover*
  // between its lock acquisitions using a contending key pattern. The
  // cheap deterministic proxy: a failing insert must not change the
  // restart/lock behaviour even when another thread performs updates
  // around the same key continuously.
  std::atomic<bool> Stop{false};
  std::thread Churner([&] {
    while (!Stop.load(std::memory_order_acquire)) {
      List.insert(2);
      List.remove(2);
    }
  });
  for (int I = 0; I != 50000; ++I)
    ASSERT_FALSE(List.insert(1)) << "key 1 is always present";
  Stop.store(true, std::memory_order_release);
  Churner.join();
  EXPECT_TRUE(List.contains(1));
  EXPECT_TRUE(List.checkInvariants());
}

TEST(VblListOptimality, ValueAwareRemoveSurvivesNodeReplacement) {
  // remove(v) validates the successor VALUE, not its identity: replace
  // the node storing v between a traversal and the lock by churning
  // remove/insert of v from another thread; the remover must still
  // succeed without livelocking on identity mismatches.
  VblList<> List;
  std::atomic<bool> Stop{false};
  std::atomic<long> Balance{0};
  std::thread Churner([&] {
    long Local = 0;
    while (!Stop.load(std::memory_order_acquire)) {
      Local += List.insert(7);
      Local -= List.remove(7);
    }
    Balance.fetch_add(Local, std::memory_order_relaxed);
  });
  long MyBalance = 0;
  for (int I = 0; I != 50000; ++I) {
    MyBalance += List.insert(7);
    MyBalance -= List.remove(7);
  }
  Stop.store(true, std::memory_order_release);
  Churner.join();
  Balance.fetch_add(MyBalance, std::memory_order_relaxed);
  EXPECT_EQ(static_cast<long>(List.sizeSlow()), Balance.load());
  EXPECT_TRUE(List.checkInvariants());
}

//===----------------------------------------------------------------------===//
// Sorted-batch application (applyBatchSorted)
//===----------------------------------------------------------------------===//

// Same-key ops must take effect in submission order — the per-key FIFO
// contract of the batched service path. An insert;remove;insert triple
// on one key is only distinguishable from its permutations through the
// per-op results and the final membership; pin both.
TEST(VblBatch, SameKeyOpsKeepSubmissionOrder) {
  VblList<> List;
  BatchOp Ops[5];
  Ops[0] = {SetOp::Insert, 5};
  Ops[1] = {SetOp::Remove, 5};
  Ops[2] = {SetOp::Insert, 5};
  Ops[3] = {SetOp::Remove, 7};  // absent: must order before the insert
  Ops[4] = {SetOp::Insert, 7};
  BatchOp *Sorted[5] = {&Ops[0], &Ops[1], &Ops[2], &Ops[3], &Ops[4]};
  List.applyBatchSorted(Sorted, 5);
  EXPECT_TRUE(Ops[0].Result);
  EXPECT_TRUE(Ops[1].Result);
  EXPECT_TRUE(Ops[2].Result);
  EXPECT_FALSE(Ops[3].Result); // remove-before-insert saw an empty list
  EXPECT_TRUE(Ops[4].Result);
  EXPECT_EQ(List.snapshot(), (std::vector<SetKey>{5, 7}));
}

// The sorted-batch entry point asserts its precondition instead of
// silently reordering: same-key ops handed in descending array-slot
// order would swap an insert(k);remove(k) pair. Regression for the
// comparator leaning on pointer order of the caller's storage.
TEST(VblBatchDeathTest, SameKeyOpsOutOfSubmissionOrderAssert) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  VblList<> List;
  BatchOp Ops[2];
  Ops[0] = {SetOp::Insert, 5};
  Ops[1] = {SetOp::Remove, 5};
  // Same key, later slot first: violates (Key, submission index) order.
  BatchOp *Misordered[2] = {&Ops[1], &Ops[0]};
  EXPECT_DEATH(List.applyBatchSorted(Misordered, 2), "submission order");
}

TEST(VblBatchDeathTest, DescendingKeysAssert) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  VblList<> List;
  BatchOp Ops[2];
  Ops[0] = {SetOp::Insert, 9};
  Ops[1] = {SetOp::Insert, 4};
  BatchOp *Unsorted[2] = {&Ops[0], &Ops[1]};
  EXPECT_DEATH(List.applyBatchSorted(Unsorted, 2), "submission order");
}
