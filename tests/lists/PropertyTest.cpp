//===- tests/lists/PropertyTest.cpp - Metamorphic set properties ---------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Property-style sweeps over every registered algorithm: algebraic
/// facts any correct set must satisfy, checked on randomized inputs.
/// These complement the oracle-differential tests: a bug that happened
/// to also exist in the reference implementation would slip the
/// differential net but not these.
///
//===----------------------------------------------------------------------===//

#include "lists/SetInterface.h"

#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace vbl;

namespace {

class SetPropertyTest : public ::testing::TestWithParam<std::string> {
protected:
  void SetUp() override {
    Set = makeSet(GetParam());
    ASSERT_NE(Set, nullptr);
  }

  std::unique_ptr<ConcurrentSet> Set;
};

std::vector<SetKey> randomKeys(uint64_t Seed, size_t Count,
                               uint64_t Range) {
  Xoshiro256 Rng(Seed);
  std::vector<SetKey> Keys;
  Keys.reserve(Count);
  for (size_t I = 0; I != Count; ++I)
    Keys.push_back(static_cast<SetKey>(Rng.nextBounded(Range)) -
                   static_cast<SetKey>(Range / 2));
  return Keys;
}

} // namespace

TEST_P(SetPropertyTest, SnapshotIsSortedUniqueUnion) {
  // Inserting any multiset of keys yields exactly sorted(unique(keys)).
  const std::vector<SetKey> Keys = randomKeys(1, 500, 300);
  for (SetKey Key : Keys)
    Set->insert(Key);
  std::set<SetKey> Expected(Keys.begin(), Keys.end());
  EXPECT_EQ(Set->snapshot(),
            std::vector<SetKey>(Expected.begin(), Expected.end()));
}

TEST_P(SetPropertyTest, FailedOpsAreSnapshotInvisible) {
  for (SetKey Key : randomKeys(2, 200, 100))
    Set->insert(Key);
  const std::vector<SetKey> Before = Set->snapshot();
  // Failed inserts (all present) and failed removes (all absent).
  for (SetKey Key : Before)
    EXPECT_FALSE(Set->insert(Key));
  for (SetKey Key : {100000, 100001, 100002})
    EXPECT_FALSE(Set->remove(Key));
  EXPECT_EQ(Set->snapshot(), Before);
}

TEST_P(SetPropertyTest, InsertRemoveRoundTripIsIdentity) {
  for (SetKey Key : randomKeys(3, 150, 80))
    Set->insert(Key);
  const std::vector<SetKey> Before = Set->snapshot();
  for (SetKey Key : randomKeys(4, 100, 2000)) {
    const bool Added = Set->insert(Key);
    if (Added) {
      EXPECT_TRUE(Set->remove(Key));
    }
  }
  EXPECT_EQ(Set->snapshot(), Before);
  EXPECT_TRUE(Set->checkInvariants());
}

TEST_P(SetPropertyTest, ContainsAgreesWithSnapshot) {
  for (SetKey Key : randomKeys(5, 300, 200))
    Set->insert(Key);
  for (SetKey Key : randomKeys(6, 200, 300))
    Set->remove(Key);
  const std::vector<SetKey> Snap = Set->snapshot();
  for (SetKey Key = -160; Key != 160; ++Key)
    EXPECT_EQ(Set->contains(Key),
              std::binary_search(Snap.begin(), Snap.end(), Key))
        << "key " << Key;
}

TEST_P(SetPropertyTest, RemoveAllEmptiesTheSet) {
  const std::vector<SetKey> Keys = randomKeys(7, 400, 250);
  for (SetKey Key : Keys)
    Set->insert(Key);
  for (SetKey Key : Set->snapshot())
    EXPECT_TRUE(Set->remove(Key));
  EXPECT_TRUE(Set->snapshot().empty());
  EXPECT_TRUE(Set->checkInvariants());
}

TEST_P(SetPropertyTest, OperationsCommutePerDisjointKeySets) {
  // Applying two op-batches on disjoint key ranges in either order
  // yields the same final set.
  auto OtherSet = makeSet(GetParam());
  const std::vector<SetKey> BatchA = randomKeys(8, 120, 100);
  std::vector<SetKey> BatchB = randomKeys(9, 120, 100);
  for (SetKey &Key : BatchB)
    Key += 10000; // Disjoint range.

  for (SetKey Key : BatchA)
    Set->insert(Key);
  for (SetKey Key : BatchB)
    Set->insert(Key);

  for (SetKey Key : BatchB)
    OtherSet->insert(Key);
  for (SetKey Key : BatchA)
    OtherSet->insert(Key);

  EXPECT_EQ(Set->snapshot(), OtherSet->snapshot());
}

INSTANTIATE_TEST_SUITE_P(
    Registry, SetPropertyTest,
    ::testing::ValuesIn(registeredSetNames()),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      std::string Name = Info.param;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });
