//===- tests/support/CsvTest.cpp - CsvWriter unit tests ------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "support/Csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

using namespace vbl;

namespace {

std::string renderToString(const CsvWriter &Writer) {
  std::FILE *Tmp = std::tmpfile();
  EXPECT_NE(Tmp, nullptr);
  Writer.writeStream(Tmp);
  std::rewind(Tmp);
  std::string Out;
  char Buf[256];
  while (std::fgets(Buf, sizeof(Buf), Tmp))
    Out += Buf;
  std::fclose(Tmp);
  return Out;
}

} // namespace

TEST(CsvWriter, HeaderOnly) {
  CsvWriter Writer({"a", "b"});
  EXPECT_EQ(renderToString(Writer), "a,b\n");
}

TEST(CsvWriter, SimpleRows) {
  CsvWriter Writer({"threads", "throughput"});
  Writer.addRow({"4", "123.5"});
  Writer.addRow({"8", "99"});
  EXPECT_EQ(renderToString(Writer), "threads,throughput\n4,123.5\n8,99\n");
  EXPECT_EQ(Writer.numRows(), 2u);
}

TEST(CsvWriter, EscapesCommasAndQuotes) {
  CsvWriter Writer({"name"});
  Writer.addRow({"a,b"});
  Writer.addRow({"say \"hi\""});
  EXPECT_EQ(renderToString(Writer), "name\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriter, EscapesNewlines) {
  CsvWriter Writer({"name"});
  Writer.addRow({"two\nlines"});
  EXPECT_EQ(renderToString(Writer), "name\n\"two\nlines\"\n");
}

TEST(CsvWriter, CellFormatting) {
  EXPECT_EQ(CsvWriter::cell(static_cast<long long>(-7)), "-7");
  EXPECT_EQ(CsvWriter::cell(static_cast<unsigned long long>(9)), "9");
  EXPECT_EQ(CsvWriter::cell(1.5), "1.5");
}

TEST(CsvWriter, WriteFileRoundTrip) {
  CsvWriter Writer({"x"});
  Writer.addRow({"1"});
  const std::string Path = ::testing::TempDir() + "/vbl_csv_test.csv";
  ASSERT_TRUE(Writer.writeFile(Path));
  std::FILE *In = std::fopen(Path.c_str(), "r");
  ASSERT_NE(In, nullptr);
  char Buf[64];
  std::string Content;
  while (std::fgets(Buf, sizeof(Buf), In))
    Content += Buf;
  std::fclose(In);
  std::remove(Path.c_str());
  EXPECT_EQ(Content, "x\n1\n");
}

TEST(CsvWriter, WriteFileFailsOnBadPath) {
  CsvWriter Writer({"x"});
  EXPECT_FALSE(Writer.writeFile("/nonexistent-dir-zz/file.csv"));
}
