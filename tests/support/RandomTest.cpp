//===- tests/support/RandomTest.cpp - PRNG unit tests --------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using namespace vbl;

TEST(SplitMix64, DeterministicForSameSeed) {
  SplitMix64 A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += A.next() == B.next();
  EXPECT_EQ(Same, 0);
}

TEST(SplitMix64, ZeroSeedIsUsable) {
  SplitMix64 Gen(0);
  std::set<uint64_t> Seen;
  for (int I = 0; I != 32; ++I)
    Seen.insert(Gen.next());
  EXPECT_EQ(Seen.size(), 32u);
}

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 A(7), B(7);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Xoshiro256, BoundedStaysInRange) {
  Xoshiro256 Gen(123);
  for (uint64_t Bound : {1ull, 2ull, 3ull, 50ull, 20000ull}) {
    for (int I = 0; I != 1000; ++I)
      EXPECT_LT(Gen.nextBounded(Bound), Bound);
  }
}

TEST(Xoshiro256, BoundedOneAlwaysZero) {
  Xoshiro256 Gen(9);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(Gen.nextBounded(1), 0u);
}

TEST(Xoshiro256, BoundedRoughlyUniform) {
  Xoshiro256 Gen(99);
  constexpr uint64_t Buckets = 10;
  constexpr int Draws = 100000;
  std::vector<int> Counts(Buckets, 0);
  for (int I = 0; I != Draws; ++I)
    ++Counts[Gen.nextBounded(Buckets)];
  // Each bucket expects 10000; allow +-10% which is ~30 sigma.
  for (uint64_t B = 0; B != Buckets; ++B) {
    EXPECT_GT(Counts[B], 9000) << "bucket " << B;
    EXPECT_LT(Counts[B], 11000) << "bucket " << B;
  }
}

TEST(Xoshiro256, PercentExtremes) {
  Xoshiro256 Gen(5);
  for (int I = 0; I != 200; ++I) {
    EXPECT_FALSE(Gen.nextPercent(0));
    EXPECT_TRUE(Gen.nextPercent(100));
  }
}

TEST(Xoshiro256, PercentRoughlyCalibrated) {
  Xoshiro256 Gen(77);
  int Hits = 0;
  constexpr int Draws = 100000;
  for (int I = 0; I != Draws; ++I)
    Hits += Gen.nextPercent(20);
  EXPECT_GT(Hits, 18500);
  EXPECT_LT(Hits, 21500);
}

TEST(Xoshiro256, StreamsFromDistinctSeedsDiffer) {
  Xoshiro256 A(1000), B(1001);
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += A.next() == B.next();
  EXPECT_EQ(Same, 0);
}
