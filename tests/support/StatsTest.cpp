//===- tests/support/StatsTest.cpp - SampleStats unit tests --------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace vbl;

TEST(SampleStats, MeanOfKnownSamples) {
  SampleStats Stats;
  for (double S : {1.0, 2.0, 3.0, 4.0})
    Stats.add(S);
  EXPECT_DOUBLE_EQ(Stats.mean(), 2.5);
  EXPECT_EQ(Stats.count(), 4u);
}

TEST(SampleStats, StddevOfKnownSamples) {
  SampleStats Stats;
  for (double S : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    Stats.add(S);
  // Sample stddev of this classic example is sqrt(32/7).
  EXPECT_NEAR(Stats.stddev(), 2.13808993, 1e-6);
}

TEST(SampleStats, StddevOfSingleSampleIsZero) {
  SampleStats Stats;
  Stats.add(42.0);
  EXPECT_DOUBLE_EQ(Stats.stddev(), 0.0);
}

TEST(SampleStats, MinMax) {
  SampleStats Stats;
  for (double S : {3.0, -1.0, 7.5, 2.0})
    Stats.add(S);
  EXPECT_DOUBLE_EQ(Stats.min(), -1.0);
  EXPECT_DOUBLE_EQ(Stats.max(), 7.5);
}

TEST(SampleStats, PercentileEndpoints) {
  SampleStats Stats;
  for (double S : {10.0, 20.0, 30.0, 40.0})
    Stats.add(S);
  EXPECT_DOUBLE_EQ(Stats.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(Stats.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(Stats.percentile(50), 25.0);
}

TEST(SampleStats, PercentileInterpolates) {
  SampleStats Stats;
  for (double S : {0.0, 10.0})
    Stats.add(S);
  EXPECT_DOUBLE_EQ(Stats.percentile(25), 2.5);
  EXPECT_DOUBLE_EQ(Stats.percentile(75), 7.5);
}

TEST(SampleStats, ClearResets) {
  SampleStats Stats;
  Stats.add(1.0);
  Stats.clear();
  EXPECT_TRUE(Stats.empty());
  Stats.add(5.0);
  EXPECT_DOUBLE_EQ(Stats.mean(), 5.0);
}

TEST(SampleStats, UnsortedInputPercentile) {
  SampleStats Stats;
  for (double S : {9.0, 1.0, 5.0})
    Stats.add(S);
  EXPECT_DOUBLE_EQ(Stats.percentile(50), 5.0);
}
