//===- tests/support/BarrierTest.cpp - SpinBarrier unit tests ------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "support/Barrier.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace vbl;

TEST(SpinBarrier, SingleThreadPassesImmediately) {
  SpinBarrier Barrier(1);
  for (int I = 0; I != 10; ++I)
    Barrier.arriveAndWait();
  SUCCEED();
}

TEST(SpinBarrier, PhasesStaySynchronized) {
  constexpr unsigned NumThreads = 4;
  constexpr int Phases = 50;
  SpinBarrier Barrier(NumThreads);
  std::atomic<int> Counter{0};
  std::atomic<bool> Failed{false};

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&] {
      for (int Phase = 0; Phase != Phases; ++Phase) {
        Counter.fetch_add(1, std::memory_order_relaxed);
        Barrier.arriveAndWait();
        // Between the two barriers every thread must observe the full
        // count of this phase.
        const int Expected = (Phase + 1) * static_cast<int>(NumThreads);
        if (Counter.load(std::memory_order_relaxed) != Expected)
          Failed.store(true, std::memory_order_relaxed);
        Barrier.arriveAndWait();
      }
    });
  }
  for (auto &Thread : Threads)
    Thread.join();
  EXPECT_FALSE(Failed.load());
  EXPECT_EQ(Counter.load(), Phases * static_cast<int>(NumThreads));
}

TEST(SpinBarrier, ReusableAcrossManyRounds) {
  constexpr unsigned NumThreads = 2;
  SpinBarrier Barrier(NumThreads);
  std::atomic<int> Rounds{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&] {
      for (int I = 0; I != 500; ++I) {
        Barrier.arriveAndWait();
        if (I == 0)
          Rounds.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto &Thread : Threads)
    Thread.join();
  EXPECT_EQ(Rounds.load(), static_cast<int>(NumThreads));
}
