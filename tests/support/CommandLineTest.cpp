//===- tests/support/CommandLineTest.cpp - FlagSet unit tests ------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"

#include <gtest/gtest.h>

using namespace vbl;

namespace {

class FlagSetTest : public ::testing::Test {
protected:
  FlagSetTest() : Flags("test program") {
    Flags.addInt("count", 10, "a count");
    Flags.addBool("verbose", false, "be chatty");
    Flags.addString("algo", "vbl", "algorithm name");
    Flags.addUnsignedList("threads", {1, 2}, "thread sweep");
  }

  bool parse(std::vector<const char *> Args) {
    Args.insert(Args.begin(), "prog");
    return Flags.parse(static_cast<int>(Args.size()),
                       const_cast<char **>(Args.data()));
  }

  FlagSet Flags;
};

} // namespace

TEST_F(FlagSetTest, DefaultsApplyWithoutArgs) {
  EXPECT_TRUE(parse({}));
  EXPECT_EQ(Flags.getInt("count"), 10);
  EXPECT_FALSE(Flags.getBool("verbose"));
  EXPECT_EQ(Flags.getString("algo"), "vbl");
  EXPECT_EQ(Flags.getUnsignedList("threads"),
            (std::vector<unsigned>{1, 2}));
}

TEST_F(FlagSetTest, EqualsSyntax) {
  EXPECT_TRUE(parse({"--count=42", "--algo=lazy"}));
  EXPECT_EQ(Flags.getInt("count"), 42);
  EXPECT_EQ(Flags.getString("algo"), "lazy");
}

TEST_F(FlagSetTest, SpaceSyntax) {
  EXPECT_TRUE(parse({"--count", "7"}));
  EXPECT_EQ(Flags.getInt("count"), 7);
}

TEST_F(FlagSetTest, NegativeInt) {
  EXPECT_TRUE(parse({"--count=-3"}));
  EXPECT_EQ(Flags.getInt("count"), -3);
}

TEST_F(FlagSetTest, BareBoolSetsTrue) {
  EXPECT_TRUE(parse({"--verbose"}));
  EXPECT_TRUE(Flags.getBool("verbose"));
}

TEST_F(FlagSetTest, ExplicitBoolValues) {
  EXPECT_TRUE(parse({"--verbose=true"}));
  EXPECT_TRUE(Flags.getBool("verbose"));
  EXPECT_TRUE(parse({"--verbose=false"}));
  EXPECT_FALSE(Flags.getBool("verbose"));
}

TEST_F(FlagSetTest, UnsignedListParses) {
  EXPECT_TRUE(parse({"--threads=1,2,4,8"}));
  EXPECT_EQ(Flags.getUnsignedList("threads"),
            (std::vector<unsigned>{1, 2, 4, 8}));
}

TEST_F(FlagSetTest, SingleElementList) {
  EXPECT_TRUE(parse({"--threads=16"}));
  EXPECT_EQ(Flags.getUnsignedList("threads"), (std::vector<unsigned>{16}));
}

TEST_F(FlagSetTest, UnknownFlagFails) { EXPECT_FALSE(parse({"--nope=1"})); }

TEST_F(FlagSetTest, MalformedIntFails) {
  EXPECT_FALSE(parse({"--count=abc"}));
  EXPECT_FALSE(parse({"--count=12x"}));
}

TEST_F(FlagSetTest, MalformedListFails) {
  EXPECT_FALSE(parse({"--threads=1,,2"}));
  EXPECT_FALSE(parse({"--threads=1,-2"}));
}

TEST_F(FlagSetTest, MissingValueFails) { EXPECT_FALSE(parse({"--count"})); }

TEST_F(FlagSetTest, PositionalArgFails) { EXPECT_FALSE(parse({"stray"})); }

TEST_F(FlagSetTest, HelpReturnsFalse) { EXPECT_FALSE(parse({"--help"})); }
