//===- tests/support/AsciiChartTest.cpp - Chart renderer tests -----------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "support/AsciiChart.h"

#include <gtest/gtest.h>

using namespace vbl;

TEST(AsciiChart, EmptyInputsProduceNoData) {
  EXPECT_EQ(renderAsciiChart({}, {}), "(no data)\n");
  EXPECT_EQ(renderAsciiChart({"1"}, {}), "(no data)\n");
}

TEST(AsciiChart, ContainsLegendAndLabels) {
  const std::string Out = renderAsciiChart(
      {"1", "2", "4"},
      {{"vbl", {1.0, 2.0, 3.0}}, {"lazy", {1.0, 1.5, 1.2}}}, 8,
      "Mops/s");
  EXPECT_NE(Out.find("*=vbl"), std::string::npos);
  EXPECT_NE(Out.find("o=lazy"), std::string::npos);
  EXPECT_NE(Out.find("Mops/s"), std::string::npos);
  EXPECT_NE(Out.find('1'), std::string::npos);
  EXPECT_NE(Out.find('4'), std::string::npos);
}

TEST(AsciiChart, GlyphCountsMatchPoints) {
  const std::string Out =
      renderAsciiChart({"1", "2", "4", "8"}, {{"s", {1, 2, 3, 4}}}, 10);
  // Four distinct y-positions: four '*' glyphs, no collisions.
  size_t Stars = 0;
  for (char C : Out)
    Stars += C == '*';
  EXPECT_EQ(Stars, 4u + 1u) << "4 points plus the legend glyph";
}

TEST(AsciiChart, CollidingPointsMarked) {
  const std::string Out = renderAsciiChart(
      {"1"}, {{"a", {5.0}}, {"b", {5.0}}}, 8);
  EXPECT_NE(Out.find('#'), std::string::npos)
      << "two series at the same cell must print '#'";
}

TEST(AsciiChart, HigherValueIsHigherRow) {
  const std::string Out =
      renderAsciiChart({"1", "2"}, {{"s", {1.0, 10.0}}}, 10);
  const size_t FirstStar = Out.find('*');
  const size_t SecondStar = Out.find('*', FirstStar + 1);
  ASSERT_NE(SecondStar, std::string::npos);
  // The 10.0 point (x=2) must appear on an earlier line than the 1.0
  // point: find their line numbers.
  const size_t LineOfFirst =
      std::count(Out.begin(), Out.begin() + (long)FirstStar, '\n');
  const size_t LineOfSecond =
      std::count(Out.begin(), Out.begin() + (long)SecondStar, '\n');
  EXPECT_LT(LineOfFirst, LineOfSecond)
      << "row order must reflect values:\n"
      << Out;
  // And the earlier (higher) line must be the larger value's column
  // (further right).
  const size_t ColOfFirst = FirstStar - Out.rfind('\n', FirstStar) - 1;
  const size_t ColOfSecond = SecondStar - Out.rfind('\n', SecondStar) - 1;
  EXPECT_GT(ColOfFirst, ColOfSecond) << Out;
}

TEST(AsciiChart, AllZeroSeriesRendersOnAxis) {
  const std::string Out =
      renderAsciiChart({"1", "2"}, {{"s", {0.0, 0.0}}}, 8);
  EXPECT_NE(Out.find('*'), std::string::npos);
}
