//===- tests/sched/VersionedLockSchedTest.cpp - Seqlock vs writer --------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic-scheduler test for the VersionedLock optimistic read
/// protocol: an optimistic reader (tryReadBegin / two data reads /
/// readValidate) races a locked writer over every interleaving the
/// InterleavingExplorer can produce. For each interleaving — each a
/// fixed, replayable schedule — the test asserts the validation outcome
/// is exactly right (validation succeeds iff the two data reads formed
/// an atomic snapshot) and that lock.optimistic_retries counts exactly
/// the failed probes and failed validations of that schedule.
///
//===----------------------------------------------------------------------===//

#include "sched/InterleavingExplorer.h"
#include "sched/TracedPolicy.h"
#include "stats/Stats.h"
#include "sync/VersionedLock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

using namespace vbl;
using namespace vbl::sched;

namespace {

/// Shared state of one episode plus the reader's recorded outcome.
struct SeqlockEpisode {
  VersionedLock Lock;
  std::atomic<int64_t> A{0};
  std::atomic<int64_t> B{0};
  bool Began = false;
  bool Valid = false;
  int64_t SeenA = -1;
  int64_t SeenB = -1;
};

/// Thread 0 reads {A, B} under the optimistic protocol; thread 1 writes
/// A then B under the lock. \p Slot receives each episode's state so
/// the visitor can inspect the outcome after the run.
EpisodeFactory
seqlockFactory(std::shared_ptr<std::shared_ptr<SeqlockEpisode>> Slot) {
  return [Slot]() -> Episode {
    auto St = std::make_shared<SeqlockEpisode>();
    *Slot = St;
    Episode Ep;
    Ep.Holder = St;
    Ep.Bodies = {
        [St] {
          uint64_t Version = 0;
          St->Began =
              St->Lock.tryReadBegin<TracedPolicy>(Version, &St->Lock);
          if (!St->Began)
            return; // Single probe; the retry loop belongs to callers.
          St->SeenA = TracedPolicy::read(St->A, std::memory_order_acquire,
                                         &St->A, MemField::Val);
          St->SeenB = TracedPolicy::read(St->B, std::memory_order_acquire,
                                         &St->B, MemField::Val);
          St->Valid = St->Lock.readValidate<TracedPolicy>(Version,
                                                          &St->Lock);
        },
        [St] {
          TracedPolicy::lockAcquire(St->Lock, &St->Lock);
          TracedPolicy::write(St->A, int64_t(1),
                              std::memory_order_release, &St->A,
                              MemField::Val);
          TracedPolicy::write(St->B, int64_t(1),
                              std::memory_order_release, &St->B,
                              MemField::Val);
          TracedPolicy::lockRelease(St->Lock, &St->Lock);
        }};
    return Ep;
  };
}

/// lock.optimistic_retries an episode must count: one for a probe that
/// saw the writer, one for a failed validation.
uint64_t expectedRetries(const SeqlockEpisode &St) {
  return (St.Began ? 0u : 1u) + (St.Began && !St.Valid ? 1u : 0u);
}

} // namespace

TEST(VersionedLockSched, SerialScheduleValidatesCleanly) {
  auto Slot = std::make_shared<std::shared_ptr<SeqlockEpisode>>();
  InterleavingExplorer Explorer(seqlockFactory(Slot));
  const stats::Snapshot Before = stats::snapshotAll();
  const EpisodeResult R = Explorer.run({});
  const stats::Snapshot D = stats::snapshotAll().delta(Before);
  ASSERT_NE(*Slot, nullptr);
  const SeqlockEpisode &St = **Slot;
  EXPECT_FALSE(R.Deadlocked);
  // Reader (thread 0) ran to completion before the writer started.
  EXPECT_TRUE(St.Began);
  EXPECT_TRUE(St.Valid);
  EXPECT_EQ(St.SeenA, 0);
  EXPECT_EQ(St.SeenB, 0);
  if (stats::Enabled) {
    EXPECT_EQ(D.get(stats::Counter::LockOptimisticRetries), 0u);
    EXPECT_EQ(D.get(stats::Counter::LockAcquireRetries), 0u);
  }
}

TEST(VersionedLockSched, EveryInterleavingValidatesExactly) {
  auto Slot = std::make_shared<std::shared_ptr<SeqlockEpisode>>();
  InterleavingExplorer Explorer(seqlockFactory(Slot));

  size_t CleanBefore = 0;  // Reader entirely before the writer.
  size_t CleanAfter = 0;   // Reader entirely after the writer.
  size_t ProbeFailed = 0;  // tryReadBegin saw the lock held.
  size_t Invalidated = 0;  // Window overlapped a write: must not pass.
  std::vector<unsigned> InvalidatedChoices;
  uint64_t InvalidatedRetries = 0;

  stats::Snapshot Prev = stats::snapshotAll();
  const size_t Episodes = Explorer.exploreAll(
      [&](const EpisodeResult &R) {
        const stats::Snapshot Cur = stats::snapshotAll();
        const stats::Snapshot D = Cur.delta(Prev);
        Prev = Cur;
        EXPECT_FALSE(R.Deadlocked);
        ASSERT_NE(*Slot, nullptr);
        const SeqlockEpisode &St = **Slot;

        // The seqlock guarantee: a validated window is an atomic
        // snapshot. Torn reads — (0,1) when the write lands between
        // the two reads, (1,0) when the probe slips in before the
        // writer locks — may happen, but must never validate.
        if (St.Began && St.Valid) {
          EXPECT_EQ(St.SeenA, St.SeenB)
              << "validated window saw a torn write";
        }

        if (!St.Began) {
          ++ProbeFailed;
        } else if (!St.Valid) {
          ++Invalidated;
          if (InvalidatedChoices.empty()) {
            InvalidatedChoices = R.Choices;
            InvalidatedRetries =
                D.get(stats::Counter::LockOptimisticRetries);
          }
        } else if (St.SeenA == 0) {
          ++CleanBefore;
        } else {
          ++CleanAfter;
        }

        if (stats::Enabled) {
          EXPECT_EQ(D.get(stats::Counter::LockOptimisticRetries),
                    expectedRetries(St))
              << "retries must count failed probes and validations "
                 "exactly, per fixed schedule";
        }
      },
      10000);

  // The space is tiny (two short threads); it must be fully explored
  // and contain every qualitative outcome.
  EXPECT_LT(Episodes, 10000u);
  EXPECT_GE(CleanBefore, 1u);
  EXPECT_GE(CleanAfter, 1u);
  EXPECT_GE(ProbeFailed, 1u);
  EXPECT_GE(Invalidated, 1u);

  // Replay the first invalidated interleaving: outcome and counters
  // are an exact function of the fixed schedule.
  ASSERT_FALSE(InvalidatedChoices.empty());
  const stats::Snapshot Before = stats::snapshotAll();
  const EpisodeResult R = Explorer.run(InvalidatedChoices);
  const stats::Snapshot D = stats::snapshotAll().delta(Before);
  EXPECT_EQ(R.Choices, InvalidatedChoices);
  const SeqlockEpisode &St = **Slot;
  EXPECT_TRUE(St.Began);
  EXPECT_FALSE(St.Valid);
  if (stats::Enabled) {
    EXPECT_EQ(D.get(stats::Counter::LockOptimisticRetries),
              InvalidatedRetries);
    EXPECT_EQ(D.get(stats::Counter::LockOptimisticRetries),
              expectedRetries(St));
  }
}
