//===- tests/sched/ScheduleFiguresTest.cpp - Figs. 2 and 3 executable ----===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// The paper's two suboptimality counterexamples, made executable:
///
///  Fig. 2 — on the list {1}, schedule insert(2) up to (and including)
///  its node creation, then run insert(1) to completion, then let
///  insert(2) publish. The schedule is correct; the Lazy list rejects
///  it (insert(1) blocks on X1's lock, held by insert(2)); VBL accepts
///  it (a failing insert never locks).
///
///  Fig. 3 — Harris-Michael: after remove(2) logically deletes X2 but
///  fails its physical unlink (insert(1) won the CAS on head), two
///  failing inserts both try to help-unlink X2; the loser must restart
///  from the head, rejecting a correct schedule. VBL executes the
///  analogous interleavings with no restart and no lock.
///
//===----------------------------------------------------------------------===//

#include "core/VblList.h"
#include "lists/HarrisMichaelList.h"
#include "lists/LazyList.h"
#include "lists/SequentialList.h"
#include "reclaim/LeakyDomain.h"
#include "sched/InterleavingExplorer.h"
#include "sched/ScheduleChecker.h"
#include "sched/ScheduleExport.h"
#include "sched/StepScheduler.h"

#include <gtest/gtest.h>

using namespace vbl;
using namespace vbl::sched;

namespace {

using TracedVbl = VblList<reclaim::LeakyDomain, TracedPolicy>;
using TracedLazy = LazyList<reclaim::LeakyDomain, TracedPolicy>;
using TracedHm = HarrisMichaelList<reclaim::LeakyDomain, TracedPolicy>;
using TracedLL = SequentialList<TracedPolicy>;

/// Two single-op threads against a fresh list of type ListT.
template <class ListT>
EpisodeFactory twoOpFactory(std::vector<SetKey> Prefill,
                            std::pair<SetOp, SetKey> Op0,
                            std::pair<SetOp, SetKey> Op1) {
  return [=]() -> Episode {
    auto List = std::make_shared<ListT>();
    for (SetKey Key : Prefill)
      List->insert(Key);
    auto body = [List](std::pair<SetOp, SetKey> Spec) {
      return std::function<void()>([List, Spec] {
        const auto [Op, Key] = Spec;
        switch (Op) {
        case SetOp::Insert:
          tracedOp(SetOp::Insert, Key, [&] { return List->insert(Key); });
          break;
        case SetOp::Remove:
          tracedOp(SetOp::Remove, Key, [&] { return List->remove(Key); });
          break;
        case SetOp::Contains:
          tracedOp(SetOp::Contains, Key,
                   [&] { return List->contains(Key); });
          break;
        case SetOp::RangeQuery:
          vbl_unreachable("point-op helper; scan scenarios live in "
                          "ScenarioCorpus.h");
        }
      });
    };
    Episode Ep;
    Ep.HeadNode = List->headNode();
    Ep.InitialChain = List->nodeChain();
    Ep.Holder = List;
    Ep.Bodies = {body(Op0), body(Op1)};
    return Ep;
  };
}

/// Builds the Fig. 2 target schedule by interleaving the sequential
/// code: T1 = insert(2) runs up to its node creation, T0 = insert(1)
/// runs to completion (returns false), T1 publishes.
Schedule makeFig2Schedule(std::vector<std::pair<const void *, SetKey>>
                              *InitialChainOut = nullptr) {
  InterleavingExplorer Explorer(twoOpFactory<TracedLL>(
      {1}, {SetOp::Insert, 1}, {SetOp::Insert, 2}));
  // Step map (one access executes at the start of each step, see
  // StepScheduler): T1 insert(2): s1 begin, s2 read next(h), s3 read
  // val(X1), s4 read next(X1), s5 read val(tail) + newnode, s6 write +
  // end. T0 insert(1): s1 begin, s2 read next(h), s3 read val(X1) +
  // end(false).
  const EpisodeResult Result =
      Explorer.run({1, 1, 1, 1, 1, 0, 0, 0, 1});
  if (InitialChainOut)
    *InitialChainOut = Result.Meta.InitialChain;
  return exportLLSchedule(Result.Raw, Result.Meta.HeadNode);
}

} // namespace

TEST(Fig2, TargetScheduleShape) {
  const Schedule Target = makeFig2Schedule();
  // insert(1) must END before insert(2)'s write: that order is the
  // whole point of the schedule.
  int EndOfT0 = -1, WriteOfT1 = -1;
  const auto &Events = Target.events();
  for (size_t I = 0; I != Events.size(); ++I) {
    if (Events[I].Kind == EventKind::OpEnd && Events[I].Thread == 0)
      EndOfT0 = static_cast<int>(I);
    if (Events[I].Kind == EventKind::Write && Events[I].Thread == 1)
      WriteOfT1 = static_cast<int>(I);
  }
  ASSERT_NE(EndOfT0, -1);
  ASSERT_NE(WriteOfT1, -1);
  EXPECT_LT(EndOfT0, WriteOfT1) << Target.toString();
}

TEST(Fig2, ScheduleIsCorrect) {
  std::vector<std::pair<const void *, SetKey>> Chain;
  const Schedule Target = makeFig2Schedule(&Chain);
  const CorrectnessResult Check =
      checkScheduleCorrect(Target, Chain, {1, 2});
  EXPECT_TRUE(Check.correct()) << Check.Error;
}

TEST(Fig2, VblAcceptsTheSchedule) {
  const Schedule Target = makeFig2Schedule();
  const ReplayResult Replay = replaySchedule(
      twoOpFactory<TracedVbl>({1}, {SetOp::Insert, 1},
                              {SetOp::Insert, 2}),
      Target);
  EXPECT_TRUE(Replay.Accepted)
      << Replay.Reason << "\nraw:\n"
      << Replay.RawTrace.toString();
  // And the acceptance needed no synchronization at all on T0's side:
  // the failing insert(1) took no lock.
  for (const Event &E : Replay.RawTrace.events()) {
    if (E.Thread == 0) {
      EXPECT_NE(E.Kind, EventKind::LockAcquire)
          << "a failing VBL insert must not lock";
    }
  }
}

TEST(Fig2, LazyRejectsTheSchedule) {
  const Schedule Target = makeFig2Schedule();
  const ReplayResult Replay = replaySchedule(
      twoOpFactory<TracedLazy>({1}, {SetOp::Insert, 1},
                               {SetOp::Insert, 2}),
      Target);
  EXPECT_FALSE(Replay.Accepted);
  // The rejection is a lock: insert(1) needs X1's lock, held by
  // insert(2) which the schedule keeps un-scheduled until insert(1)
  // completes.
  bool T0Blocked = false;
  for (const Event &E : Replay.RawTrace.events())
    T0Blocked |= E.Thread == 0 && E.Kind == EventKind::LockBlocked;
  EXPECT_TRUE(T0Blocked) << Replay.Reason << "\n"
                         << Replay.RawTrace.toString();
}

//===----------------------------------------------------------------------===//
// Fig. 3
//===----------------------------------------------------------------------===//

namespace {

/// Steps \p Thread until \p Pred(trace) holds or the step budget runs
/// out; returns whether the predicate held.
bool stepUntil(StepScheduler &Sched, unsigned Thread,
               const std::function<bool(const std::vector<Event> &)> &Pred,
               int MaxSteps = 300) {
  for (int I = 0; I != MaxSteps; ++I) {
    if (Pred(Sched.trace()))
      return true;
    if (!Sched.runnable(Thread))
      return false;
    Sched.step(Thread);
  }
  return Pred(Sched.trace());
}

bool threadHasEvent(const std::vector<Event> &Trace, unsigned Thread,
                    EventKind Kind) {
  for (const Event &E : Trace)
    if (E.Thread == Thread && E.Kind == Kind)
      return true;
  return false;
}

} // namespace

TEST(Fig3, HarrisMichaelRejectsViaRestart) {
  // List {2,3,4}. Four logical threads play the paper's script.
  auto List = std::make_shared<TracedHm>();
  for (SetKey Key : {2, 3, 4})
    List->insert(Key);

  auto op = [List](SetOp Kind, SetKey Key) {
    return std::function<void()>([List, Kind, Key] {
      switch (Kind) {
      case SetOp::Insert:
        tracedOp(SetOp::Insert, Key, [&] { return List->insert(Key); });
        break;
      case SetOp::Remove:
        tracedOp(SetOp::Remove, Key, [&] { return List->remove(Key); });
        break;
      case SetOp::Contains:
        tracedOp(SetOp::Contains, Key,
                 [&] { return List->contains(Key); });
        break;
      case SetOp::RangeQuery:
        vbl_unreachable("point-op helper; scan scenarios live in "
                        "ScenarioCorpus.h");
      }
    });
  };

  StepScheduler Sched({op(SetOp::Insert, 1), op(SetOp::Remove, 2),
                       op(SetOp::Insert, 3), op(SetOp::Insert, 4)});

  // Phase A: insert(1) traverses past X2 while it is still unmarked
  // (two next-word reads: head and X2)...
  ASSERT_TRUE(stepUntil(Sched, 0, [](const std::vector<Event> &Trace) {
    int Reads = 0;
    for (const Event &E : Trace)
      if (E.Thread == 0 && E.Kind == EventKind::Read &&
          E.Field == MemField::Next)
        ++Reads;
    return Reads >= 2;
  }));
  // ...then remove(2) marks X2 (its first successful CAS)...
  ASSERT_TRUE(stepUntil(Sched, 1, [](const std::vector<Event> &Trace) {
    for (const Event &E : Trace)
      if (E.Thread == 1 && E.Kind == EventKind::Cas && E.Value2 == 1)
        return true;
    return false;
  }));
  // ...then insert(1) completes, winning the CAS on head...
  ASSERT_TRUE(stepUntil(Sched, 0, [&](const std::vector<Event> &) {
    return Sched.finished(0);
  }));
  // ...so remove(2)'s physical unlink fails, yet it completes with X2
  // still linked (delegation, not retry: no restart).
  ASSERT_TRUE(stepUntil(Sched, 1, [&](const std::vector<Event> &) {
    return Sched.finished(1);
  }));
  EXPECT_FALSE(threadHasEvent(Sched.trace(), 1, EventKind::Restart));

  // Phase B: insert(4) traverses up to (and including) reading the
  // marked X2's next word; it has then committed to helping.
  ASSERT_TRUE(stepUntil(Sched, 3, [](const std::vector<Event> &Trace) {
    int Reads = 0;
    for (const Event &E : Trace)
      if (E.Thread == 3 && E.Kind == EventKind::Read &&
          E.Field == MemField::Next)
        ++Reads;
    return Reads >= 3; // head, X1, X2's word (marked).
  }));
  // insert(3) runs to completion: it helps unlink X2 and returns false.
  ASSERT_TRUE(stepUntil(Sched, 2, [&](const std::vector<Event> &) {
    return Sched.finished(2);
  }));
  EXPECT_FALSE(threadHasEvent(Sched.trace(), 2, EventKind::Restart));

  // insert(4) now attempts the same unlink; its CAS fails and the
  // operation must RESTART from the head — the rejection of Fig. 3.
  ASSERT_TRUE(stepUntil(Sched, 3, [&](const std::vector<Event> &) {
    return Sched.finished(3);
  }));
  EXPECT_TRUE(threadHasEvent(Sched.trace(), 3, EventKind::Restart))
      << Sched.schedule().toString();

  // Semantics stayed intact throughout.
  const auto Ends = Sched.opEndEvents();
  ASSERT_EQ(Ends.size(), 4u);
  EXPECT_TRUE(List->checkInvariants());
  EXPECT_FALSE(List->contains(2));
}

TEST(Fig3, VblExecutesAnalogousInterleavingWithoutRestart) {
  // The pure-LL analogue after remove(2): two failing inserts traverse
  // the same region concurrently. VBL must complete every interleaving
  // of them with no restart and no lock (they are read-only).
  InterleavingExplorer Explorer(twoOpFactory<TracedVbl>(
      {1, 3, 4}, {SetOp::Insert, 3}, {SetOp::Insert, 4}));
  size_t Episodes = 0;
  Explorer.exploreAll(
      [&](const EpisodeResult &Result) {
        ++Episodes;
        for (const Event &E : Result.Raw.events()) {
          EXPECT_NE(E.Kind, EventKind::Restart) << Result.Raw.toString();
          EXPECT_NE(E.Kind, EventKind::LockAcquire)
              << Result.Raw.toString();
        }
        // Both inserts fail: the keys are present.
        for (const Event &E : Result.Raw.events()) {
          if (E.Kind == EventKind::OpEnd) {
            EXPECT_EQ(E.Value, 0u) << Result.Raw.toString();
          }
        }
      },
      /*MaxEpisodes=*/30000);
  EXPECT_GT(Episodes, 100u) << "exploration space unexpectedly small";
}

TEST(Fig3, LazyLocksEvenWhenFailingInserts) {
  // Contrast: the Lazy list takes locks for the same failing inserts in
  // every interleaving — the metadata conflict the paper blames for the
  // Fig. 1 collapse.
  InterleavingExplorer Explorer(twoOpFactory<TracedLazy>(
      {1, 3, 4}, {SetOp::Insert, 3}, {SetOp::Insert, 4}));
  const EpisodeResult Result = Explorer.run({});
  bool SawLock = false;
  for (const Event &E : Result.Raw.events())
    SawLock |= E.Kind == EventKind::LockAcquire;
  EXPECT_TRUE(SawLock);
}
