//===- tests/sched/SpecInterpreterTest.cpp - LL validation tests ---------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "sched/SpecInterpreter.h"

#include "lists/SequentialList.h"
#include "sched/ScheduleExport.h"
#include "sched/StepScheduler.h"

#include <gtest/gtest.h>

using namespace vbl;
using namespace vbl::sched;

namespace {

/// Fabricated node identities for hand-built traces.
int Cells[8];
const void *head() { return &Cells[0]; }
const void *node(int I) { return &Cells[I]; }

Event read(const void *Node, MemField Field, uint64_t Value) {
  Event E;
  E.Kind = EventKind::Read;
  E.Field = Field;
  E.Node = Node;
  E.Value = Value;
  return E;
}

Event readNextTo(const void *Node, const void *Target) {
  return read(Node, MemField::Next,
              static_cast<uint64_t>(reinterpret_cast<uintptr_t>(Target)));
}

Event write(const void *Node, const void *Target) {
  Event E;
  E.Kind = EventKind::Write;
  E.Field = MemField::Next;
  E.Node = Node;
  E.Value = static_cast<uint64_t>(reinterpret_cast<uintptr_t>(Target));
  return E;
}

Event newNode(const void *Node, SetKey Key) {
  Event E;
  E.Kind = EventKind::NewNode;
  E.Node = Node;
  E.Value = static_cast<uint64_t>(Key);
  return E;
}

ExportedOp makeOp(SetOp Kind, SetKey Key, bool Result,
                  std::vector<Event> Steps) {
  ExportedOp Op;
  Op.Op = Kind;
  Op.Key = Key;
  Op.Result = Result;
  Op.Completed = true;
  Op.Steps = std::move(Steps);
  return Op;
}

} // namespace

TEST(SpecInterpreter, AcceptsCanonicalContains) {
  // head -> n1(5) -> tail(+inf): contains(5) reads next(head), val(n1).
  const auto Op = makeOp(SetOp::Contains, 5, true,
                         {readNextTo(head(), node(1)),
                          read(node(1), MemField::Val, 5)});
  std::string Error;
  EXPECT_TRUE(validateAgainstSpec(Op, head(), &Error)) << Error;
}

TEST(SpecInterpreter, RejectsContainsWithWrongResult) {
  const auto Op = makeOp(SetOp::Contains, 5, false,
                         {readNextTo(head(), node(1)),
                          read(node(1), MemField::Val, 5)});
  EXPECT_FALSE(validateAgainstSpec(Op, head()));
}

TEST(SpecInterpreter, AcceptsSuccessfulInsert) {
  // insert(3) into head -> n1(5): traverse, create n2, link.
  const auto Op = makeOp(SetOp::Insert, 3, true,
                         {readNextTo(head(), node(1)),
                          read(node(1), MemField::Val, 5),
                          newNode(node(2), 3), write(head(), node(2))});
  std::string Error;
  EXPECT_TRUE(validateAgainstSpec(Op, head(), &Error)) << Error;
}

TEST(SpecInterpreter, RejectsInsertLinkingFromWrongNode) {
  // The link write must target prev (= head here), not another node.
  const auto Op = makeOp(SetOp::Insert, 3, true,
                         {readNextTo(head(), node(1)),
                          read(node(1), MemField::Val, 5),
                          newNode(node(2), 3), write(node(1), node(2))});
  EXPECT_FALSE(validateAgainstSpec(Op, head()));
}

TEST(SpecInterpreter, RejectsInsertWithoutCreation) {
  const auto Op = makeOp(SetOp::Insert, 3, true,
                         {readNextTo(head(), node(1)),
                          read(node(1), MemField::Val, 5),
                          write(head(), node(2))});
  EXPECT_FALSE(validateAgainstSpec(Op, head()));
}

TEST(SpecInterpreter, AcceptsFailedInsertStoppingAtMatch) {
  const auto Op = makeOp(SetOp::Insert, 5, false,
                         {readNextTo(head(), node(1)),
                          read(node(1), MemField::Val, 5)});
  std::string Error;
  EXPECT_TRUE(validateAgainstSpec(Op, head(), &Error)) << Error;
}

TEST(SpecInterpreter, RejectsFailedInsertThatKeepsGoing) {
  const auto Op = makeOp(SetOp::Insert, 5, false,
                         {readNextTo(head(), node(1)),
                          read(node(1), MemField::Val, 5),
                          readNextTo(node(1), node(3))});
  EXPECT_FALSE(validateAgainstSpec(Op, head()));
}

TEST(SpecInterpreter, AcceptsSuccessfulRemove) {
  // remove(5): traverse to n1(5), read its next, unlink via head.
  const auto Op = makeOp(SetOp::Remove, 5, true,
                         {readNextTo(head(), node(1)),
                          read(node(1), MemField::Val, 5),
                          readNextTo(node(1), node(3)),
                          write(head(), node(3))});
  std::string Error;
  EXPECT_TRUE(validateAgainstSpec(Op, head(), &Error)) << Error;
}

TEST(SpecInterpreter, RejectsRemoveUnlinkingWrongSuccessor) {
  const auto Op = makeOp(SetOp::Remove, 5, true,
                         {readNextTo(head(), node(1)),
                          read(node(1), MemField::Val, 5),
                          readNextTo(node(1), node(3)),
                          write(head(), node(4))});
  EXPECT_FALSE(validateAgainstSpec(Op, head()));
}

TEST(SpecInterpreter, RejectsTraversalSkippingValRead) {
  // Two next reads in a row without the val read LL performs.
  const auto Op = makeOp(SetOp::Contains, 9, false,
                         {readNextTo(head(), node(1)),
                          readNextTo(node(1), node(2)),
                          read(node(2), MemField::Val, 11)});
  EXPECT_FALSE(validateAgainstSpec(Op, head()));
}

TEST(SpecInterpreter, RejectsTraversalJumpingNodes) {
  // The val read must target the node the last next read produced.
  const auto Op = makeOp(SetOp::Contains, 9, false,
                         {readNextTo(head(), node(1)),
                          read(node(2), MemField::Val, 11)});
  EXPECT_FALSE(validateAgainstSpec(Op, head()));
}

TEST(SpecInterpreter, AcceptsIncompletePrefix) {
  auto Op = makeOp(SetOp::Insert, 7, false,
                   {readNextTo(head(), node(1)),
                    read(node(1), MemField::Val, 5)});
  Op.Completed = false; // Mid-flight: val(5) < 7, next hop not yet read.
  std::string Error;
  EXPECT_TRUE(validateAgainstSpec(Op, head(), &Error)) << Error;
}

TEST(SpecInterpreter, MultiHopTraversal) {
  // head -> n1(2) -> n2(4) -> n3(+inf); contains(9) walks them all.
  const auto Op = makeOp(SetOp::Contains, 9, false,
                         {readNextTo(head(), node(1)),
                          read(node(1), MemField::Val, 2),
                          readNextTo(node(1), node(2)),
                          read(node(2), MemField::Val, 4),
                          readNextTo(node(2), node(3)),
                          read(node(3), MemField::Val,
                               static_cast<uint64_t>(MaxSentinel))});
  std::string Error;
  EXPECT_TRUE(validateAgainstSpec(Op, head(), &Error)) << Error;
}

//===----------------------------------------------------------------------===//
// End-to-end: traces of the real traced lists validate against LL.
//===----------------------------------------------------------------------===//

TEST(SpecInterpreter, SequentialListTracesAreLocallySerializable) {
  auto List = std::make_shared<SequentialList<TracedPolicy>>();
  List->insert(10);
  List->insert(20);
  const void *Head = List->headNode();

  StepScheduler Sched(
      {[List] {
         tracedOp(SetOp::Insert, 15, [&] { return List->insert(15); });
         tracedOp(SetOp::Remove, 10, [&] { return List->remove(10); });
         tracedOp(SetOp::Contains, 20,
                  [&] { return List->contains(20); });
         tracedOp(SetOp::Insert, 20, [&] { return List->insert(20); });
         tracedOp(SetOp::Remove, 99, [&] { return List->remove(99); });
       }});
  ASSERT_TRUE(Sched.drain());

  for (const ExportedOp &Op : exportOps(Sched.schedule(), Head)) {
    std::string Error;
    EXPECT_TRUE(validateAgainstSpec(Op, Head, &Error)) << Error;
  }
}
