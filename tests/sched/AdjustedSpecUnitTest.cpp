//===- tests/sched/AdjustedSpecUnitTest.cpp - Adjusted-LL negatives ------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Hand-built traces that the §2.3 adjusted-spec validator must accept
/// or reject: the model-checking tests prove real HM executions
/// validate; these prove the validator actually *can* say no.
///
//===----------------------------------------------------------------------===//

#include "sched/SpecInterpreter.h"

#include <gtest/gtest.h>

using namespace vbl;
using namespace vbl::sched;

namespace {

int Cells[8];
const void *head() { return &Cells[0]; }
const void *node(int I) { return &Cells[I]; }

uint64_t word(const void *P, bool Marked) {
  return static_cast<uint64_t>(reinterpret_cast<uintptr_t>(P)) |
         (Marked ? 1 : 0);
}

Event read(const void *Node, MemField Field, uint64_t Value) {
  Event E;
  E.Kind = EventKind::Read;
  E.Field = Field;
  E.Node = Node;
  E.Value = Value;
  return E;
}

Event cas(const void *Node, uint64_t Value) {
  Event E;
  E.Kind = EventKind::Cas;
  E.Field = MemField::Next;
  E.Node = Node;
  E.Value = Value;
  E.Value2 = 1;
  return E;
}

Event newNode(const void *Node, SetKey Key) {
  Event E;
  E.Kind = EventKind::NewNode;
  E.Node = Node;
  E.Value = static_cast<uint64_t>(Key);
  return E;
}

ExportedOp makeOp(SetOp Kind, SetKey Key, bool Result,
                  std::vector<Event> Steps) {
  ExportedOp Op;
  Op.Op = Kind;
  Op.Key = Key;
  Op.Result = Result;
  Op.Completed = true;
  Op.Steps = std::move(Steps);
  return Op;
}

} // namespace

TEST(AdjustedSpecUnit, AcceptsRemoveWithLogicalDeletionOnly) {
  // head -> n1(5) -> n2(+inf): remove(5) marks n1 and never unlinks.
  const auto Op = makeOp(
      SetOp::Remove, 5, true,
      {read(head(), MemField::Next, word(node(1), false)),
       read(node(1), MemField::Next, word(node(2), false)),
       read(node(1), MemField::Val, 5),
       read(node(1), MemField::Next, word(node(2), false)),
       cas(node(1), word(node(2), true))});
  std::string Error;
  EXPECT_TRUE(validateAgainstAdjustedSpec(Op, head(), &Error)) << Error;
}

TEST(AdjustedSpecUnit, AcceptsRemoveWithUnlink) {
  const auto Op = makeOp(
      SetOp::Remove, 5, true,
      {read(head(), MemField::Next, word(node(1), false)),
       read(node(1), MemField::Next, word(node(2), false)),
       read(node(1), MemField::Val, 5),
       read(node(1), MemField::Next, word(node(2), false)),
       cas(node(1), word(node(2), true)),
       cas(head(), word(node(2), false))});
  std::string Error;
  EXPECT_TRUE(validateAgainstAdjustedSpec(Op, head(), &Error)) << Error;
}

TEST(AdjustedSpecUnit, RejectsRemoveWithoutMarking) {
  // Physical unlink without the logical deletion first: not adjusted-LL.
  const auto Op = makeOp(
      SetOp::Remove, 5, true,
      {read(head(), MemField::Next, word(node(1), false)),
       read(node(1), MemField::Next, word(node(2), false)),
       read(node(1), MemField::Val, 5),
       read(node(1), MemField::Next, word(node(2), false)),
       cas(head(), word(node(2), false))});
  EXPECT_FALSE(validateAgainstAdjustedSpec(Op, head()));
}

TEST(AdjustedSpecUnit, AcceptsTraversalHelpingUnlink) {
  // insert(9) walks past a marked n1, unlinking it via head.
  const auto Op = makeOp(
      SetOp::Insert, 9, true,
      {read(head(), MemField::Next, word(node(1), false)),
       read(node(1), MemField::Next, word(node(2), true)), // n1 marked
       cas(head(), word(node(2), false)),                  // helping
       read(node(2), MemField::Next, word(node(3), false)),
       read(node(2), MemField::Val, 11), newNode(node(4), 9),
       cas(head(), word(node(4), false))});
  std::string Error;
  EXPECT_TRUE(validateAgainstAdjustedSpec(Op, head(), &Error)) << Error;
}

TEST(AdjustedSpecUnit, RejectsHelpingUnlinkOnWrongNode) {
  // The helping CAS must target prev (head here), not the marked node.
  const auto Op = makeOp(
      SetOp::Insert, 9, false,
      {read(head(), MemField::Next, word(node(1), false)),
       read(node(1), MemField::Next, word(node(2), true)),
       cas(node(1), word(node(2), false))});
  EXPECT_FALSE(validateAgainstAdjustedSpec(Op, head()));
}

TEST(AdjustedSpecUnit, RejectsInsertPublishingMarkedNode) {
  const auto Op = makeOp(
      SetOp::Insert, 9, true,
      {read(head(), MemField::Next, word(node(1), false)),
       read(node(1), MemField::Next, word(node(2), false)),
       read(node(1), MemField::Val, 11), newNode(node(4), 9),
       cas(head(), word(node(4), true))}); // mark bit set: corrupt
  EXPECT_FALSE(validateAgainstAdjustedSpec(Op, head()));
}

TEST(AdjustedSpecUnit, AcceptsContainsReadingMark) {
  const auto Op = makeOp(
      SetOp::Contains, 5, false,
      {read(head(), MemField::Next, word(node(1), false)),
       read(node(1), MemField::Val, 5),
       read(node(1), MemField::Next, word(node(2), true))});
  std::string Error;
  EXPECT_TRUE(validateAgainstAdjustedSpec(Op, head(), &Error)) << Error;
}

TEST(AdjustedSpecUnit, RejectsContainsIgnoringMark) {
  // Found the key, mark bit set, but claims present.
  const auto Op = makeOp(
      SetOp::Contains, 5, true,
      {read(head(), MemField::Next, word(node(1), false)),
       read(node(1), MemField::Val, 5),
       read(node(1), MemField::Next, word(node(2), true))});
  EXPECT_FALSE(validateAgainstAdjustedSpec(Op, head()));
}

TEST(AdjustedSpecUnit, RejectsMarkingWrongBitPattern) {
  // The marking CAS must set exactly the read word plus the mark bit.
  const auto Op = makeOp(
      SetOp::Remove, 5, true,
      {read(head(), MemField::Next, word(node(1), false)),
       read(node(1), MemField::Next, word(node(2), false)),
       read(node(1), MemField::Val, 5),
       read(node(1), MemField::Next, word(node(2), false)),
       cas(node(1), word(node(3), true))}); // different successor
  EXPECT_FALSE(validateAgainstAdjustedSpec(Op, head()));
}
