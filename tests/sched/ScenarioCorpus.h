//===- tests/sched/ScenarioCorpus.h - Shared exploration scenarios -------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scenario corpus driven through the InterleavingExplorer, shared
/// by the optimality test (Theorem 3 on the sequential spec LL) and the
/// race-detector tests (VblList / LazyList / HarrisMichaelList must
/// come back race-free over the same workloads). A scenario is a
/// prefill, one op program per thread, and the key universe the
/// correctness checker quantifies over.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_TESTS_SCHED_SCENARIOCORPUS_H
#define VBL_TESTS_SCHED_SCENARIOCORPUS_H

#include "sched/InterleavingExplorer.h"
#include "sched/TracedPolicy.h"

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace vbl {
namespace sched {

/// One program step. Point ops use Key alone; RangeQuery scans the
/// window [Key, KeyHi].
struct ProgramOp {
  SetOp Op;
  SetKey Key;
  SetKey KeyHi = 0;
};

struct Scenario {
  std::string Name;
  std::vector<SetKey> Prefill;
  /// One op list per thread.
  std::vector<std::vector<ProgramOp>> Programs;
  std::vector<SetKey> Universe;
  /// Exploration cap: multi-op scenarios only cover a deterministic
  /// lexicographic prefix of the interleaving tree.
  size_t MaxEpisodes = 60000;
};

inline std::vector<Scenario> scenarios() {
  return {
      {"fig2_insert_present_vs_insert", {1},
       {{{SetOp::Insert, 1}}, {{SetOp::Insert, 2}}}, {1, 2}, 60000},
      {"disjoint_inserts", {5},
       {{{SetOp::Insert, 1}}, {{SetOp::Insert, 9}}}, {1, 5, 9}, 60000},
      {"adjacent_inserts_empty", {},
       {{{SetOp::Insert, 1}}, {{SetOp::Insert, 2}}}, {1, 2}, 60000},
      {"insert_vs_remove_same_key", {4},
       {{{SetOp::Insert, 4}}, {{SetOp::Remove, 4}}}, {4}, 60000},
      {"remove_vs_remove_same_key", {3},
       {{{SetOp::Remove, 3}}, {{SetOp::Remove, 3}}}, {3}, 60000},
      {"remove_vs_contains", {2, 6},
       {{{SetOp::Remove, 2}}, {{SetOp::Contains, 2}}}, {2, 6}, 60000},
      {"disjoint_removes", {1, 5},
       {{{SetOp::Remove, 1}}, {{SetOp::Remove, 5}}}, {1, 5}, 60000},
      {"insert_after_vs_remove_before", {3},
       {{{SetOp::Insert, 7}}, {{SetOp::Remove, 3}}}, {3, 7}, 60000},
      // Multi-op and three-thread scenarios (capped exploration).
      {"two_ops_each", {2},
       {{{SetOp::Insert, 1}, {SetOp::Remove, 2}},
        {{SetOp::Insert, 2}, {SetOp::Contains, 1}}},
       {1, 2}, 3000},
      {"three_threads", {2},
       {{{SetOp::Insert, 1}}, {{SetOp::Remove, 2}},
        {{SetOp::Contains, 2}}},
       {1, 2}, 3000},
      {"toggle_chain", {},
       {{{SetOp::Insert, 5}, {SetOp::Remove, 5}},
        {{SetOp::Insert, 5}}},
       {5}, 3000},
      // Scan interleavings: a reader sweeps a window while a writer
      // unlinks from / inserts into the middle of it. Every episode
      // must export a spec-legal scan AND stay race- and flow-clean.
      {"scan_vs_unlink", {2, 4, 6},
       {{{SetOp::Remove, 4}}, {{SetOp::RangeQuery, 1, 7}}},
       {2, 4, 6}, 60000},
      {"scan_vs_insert_mid", {2, 6},
       {{{SetOp::Insert, 4}}, {{SetOp::RangeQuery, 1, 7}}},
       {2, 4, 6}, 60000},
  };
}

/// Scenarios for the split-ordered hash sets (tests/maps). Driven
/// against tables built with InitialBuckets=1, MaxLoadFactor=1 so that
/// episode inserts push the count over the load threshold and the
/// bucket-index growth + lazy dummy splicing interleave with the other
/// thread's operation — including the resize-vs-insert pairing the
/// race detector must clear. Kept separate from scenarios(): the
/// optimality theorem is about the flat lists, and the hash prefills
/// are tuned to the tiny-table constructor.
inline std::vector<Scenario> hashSetScenarios() {
  return {
      // Prefill grows the table untraced; both traced inserts then
      // exceed load factor 1 and race to publish a doubled index while
      // splicing dummies for freshly addressable buckets.
      {"hash_grow_vs_insert", {1, 2},
       {{{SetOp::Insert, 3}}, {{SetOp::Insert, 4}}}, {1, 2, 3, 4}, 3000},
      {"hash_insert_vs_insert_empty", {},
       {{{SetOp::Insert, 1}}, {{SetOp::Insert, 2}}}, {1, 2}, 3000},
      {"hash_insert_vs_contains", {1, 2},
       {{{SetOp::Insert, 3}}, {{SetOp::Contains, 2}}}, {1, 2, 3}, 3000},
      {"hash_insert_vs_remove", {1, 2},
       {{{SetOp::Insert, 3}}, {{SetOp::Remove, 1}}}, {1, 2, 3}, 3000},
      {"hash_remove_vs_remove_same_key", {1, 2},
       {{{SetOp::Remove, 2}}, {{SetOp::Remove, 2}}}, {1, 2}, 3000},
      {"hash_remove_vs_contains", {1, 2, 3},
       {{{SetOp::Remove, 3}}, {{SetOp::Contains, 3}}}, {1, 2, 3}, 3000},
      {"hash_two_ops_each", {1},
       {{{SetOp::Insert, 2}, {SetOp::Remove, 1}},
        {{SetOp::Insert, 3}, {SetOp::Contains, 2}}},
       {1, 2, 3}, 2000},
  };
}

/// Scenarios for shrink-enabled hash tables (the so-hash-*-resize
/// configuration): built with InitialBuckets=1, GrowLoadFactor=1,
/// ShrinkDivisor=2, MinBuckets=1, so episode removes cross the shrink
/// watermark and the halving index-swap interleaves with the other
/// thread's operation — resize-vs-insert/remove, shrink-vs-contains,
/// and both directions racing a range scan.
inline std::vector<Scenario> hashResizeScenarios() {
  return {
      // Both inserts race to publish a doubled index on a table whose
      // shrink machinery is armed (the loser's copy must retire).
      {"hash_resize_vs_insert", {1, 2},
       {{{SetOp::Insert, 3}}, {{SetOp::Insert, 4}}}, {1, 2, 3, 4}, 3000},
      // The drain crosses the shrink watermark while the insert pushes
      // the other way: halving and doubling contend for the index slot.
      {"hash_resize_vs_insert_remove", {1, 2},
       {{{SetOp::Remove, 1}, {SetOp::Remove, 2}}, {{SetOp::Insert, 3}}},
       {1, 2, 3}, 2000},
      // A reader traverses from a bucket handle resolved against the
      // wide index while the drain installs the halved copy.
      {"hash_shrink_vs_contains", {1, 2},
       {{{SetOp::Remove, 1}, {SetOp::Remove, 2}}, {{SetOp::Contains, 2}}},
       {1, 2}, 2000},
      {"hash_shrink_vs_remove", {1, 2, 3},
       {{{SetOp::Remove, 1}, {SetOp::Remove, 2}}, {{SetOp::Remove, 3}}},
       {1, 2, 3}, 2000},
      // Index swaps racing a full-window scan: the scan walks the one
      // ordered list and must stay linearizable whichever index it
      // resolved its entry point through.
      {"hash_resize_vs_scan", {1, 2},
       {{{SetOp::Insert, 3}}, {{SetOp::RangeQuery, 0, 7}}},
       {1, 2, 3}, 2000},
      {"hash_shrink_vs_scan", {1, 2, 3},
       {{{SetOp::Remove, 1}, {SetOp::Remove, 2}},
        {{SetOp::RangeQuery, 0, 7}}},
       {1, 2, 3}, 2000},
  };
}

/// Scenarios for the contention-adaptive chunk list, tuned to K=4 (the
/// merge trigger is a quarter-full or singleton chunk and a neighbour
/// the union fits with). Prefill {1..5} lays out chunks {1,2} ->
/// {3,4,5}: removing 1 or 2 drops the first chunk to one key and arms
/// a merge with the 3-key successor (union of 4 fits exactly), so the
/// two-source freeze + single swing interleaves with the other
/// thread's op.
inline std::vector<Scenario> adaptiveChunkScenarios() {
  return {
      {"chunk_merge_vs_contains", {1, 2, 3, 4, 5},
       {{{SetOp::Remove, 1}}, {{SetOp::Contains, 4}}},
       {1, 2, 3, 4, 5}, 3000},
      {"chunk_merge_vs_insert", {1, 2, 3, 4, 5},
       {{{SetOp::Remove, 2}}, {{SetOp::Insert, 6}}},
       {1, 2, 3, 4, 5, 6}, 3000},
      // Two removes, two merge attempts over overlapping chunk pairs;
      // the second must revalidate against whatever the first froze.
      {"chunk_merge_vs_remove", {1, 2, 3, 4, 5},
       {{{SetOp::Remove, 1}}, {{SetOp::Remove, 3}}},
       {1, 2, 3, 4, 5}, 3000},
      // Reshape racing a range scan: the scan's optimistic window walk
      // crosses the pair being excised by one swing.
      {"chunk_reshape_vs_range", {1, 2, 3, 4, 5},
       {{{SetOp::Remove, 2}}, {{SetOp::RangeQuery, 1, 6}}},
       {1, 2, 3, 4, 5}, 3000},
      // Same-chunk churn feeding the heat counter's abort-driven bumps
      // while a structural insert decides shape under the locks.
      {"chunk_heat_toggle", {1, 2, 3, 4, 5},
       {{{SetOp::Remove, 1}, {SetOp::Insert, 1}}, {{SetOp::Insert, 6}}},
       {1, 2, 3, 4, 5, 6}, 2000},
  };
}

/// Scenarios tuned for version-based reclamation: every program both
/// retires and re-allocates, so the explorer drives the retire ->
/// immediate in-place reuse -> birth-stamp edge against a concurrent
/// traversal or lock validation inside one episode. Run with lists over
/// a VBR domain (tests/analysis/VbrReclaimTest.cpp); they are valid,
/// if less pointed, for any reclamation scheme.
inline std::vector<Scenario> vbrScenarios() {
  return {
      // Recycle-vs-traversal: the reader's certified hop is invalidated
      // mid-traversal when the victim's block is revived as the fresh
      // insert at a different key.
      {"vbr_recycle_vs_contains", {4},
       {{{SetOp::Remove, 4}, {SetOp::Insert, 7}}, {{SetOp::Contains, 4}}},
       {4, 7}, 3000},
      // Same-key turnaround: the revived block re-enters at the same
      // routed position, maximizing stamp-vs-validate overlap between
      // the reviver's release stores and the reader's birth checks.
      {"vbr_toggle_same_key", {4},
       {{{SetOp::Remove, 4}, {SetOp::Insert, 4}}, {{SetOp::Contains, 4}}},
       {4}, 3000},
      // Two updaters: one retires and revives, the other must
      // re-certify its (prev, curr) placement under lock against the
      // possibly recycled block.
      {"vbr_stamp_vs_validate", {3, 6},
       {{{SetOp::Remove, 3}, {SetOp::Insert, 8}},
        {{SetOp::Insert, 4}, {SetOp::Remove, 6}}},
       {3, 4, 6, 8}, 2000},
      // Scan-vs-revival: the scanner's certified hop lands on a block
      // that is retired and revived (same key) mid-window; VBR birth
      // checks must keep the walk on live nodes or restart it.
      {"vbr_scan_vs_revival", {2, 4, 6},
       {{{SetOp::Remove, 4}, {SetOp::Insert, 4}},
        {{SetOp::RangeQuery, 1, 7}}},
       {2, 4, 6}, 2000},
  };
}

/// Builds an EpisodeFactory running the scenario's per-thread programs
/// against a fresh set produced by \p Make (returning a shared_ptr to
/// any structure with insert/remove/contains, headNode and nodeChain).
template <class MakeFn>
EpisodeFactory factoryForWith(const Scenario &S, MakeFn Make) {
  return [S, Make]() -> Episode {
    auto List = Make();
    for (SetKey Key : S.Prefill)
      List->insert(Key);
    Episode Ep;
    Ep.HeadNode = List->headNode();
    Ep.InitialChain = List->nodeChain();
    Ep.Holder = List;
    // Backends exposing flowView() opt into the per-step flow-invariant
    // oracle (analysis/FlowInvariant.h); others run exactly as before.
    if constexpr (requires { List->flowView(); })
      Ep.Flow = List->flowView();
    for (const auto &Program : S.Programs) {
      Ep.Bodies.push_back(std::function<void()>([List, Program] {
        for (const auto &[Op, Key, KeyHi] : Program) {
          switch (Op) {
          case SetOp::Insert:
            tracedOp(SetOp::Insert, Key,
                     [&] { return List->insert(Key); });
            break;
          case SetOp::Remove:
            tracedOp(SetOp::Remove, Key,
                     [&] { return List->remove(Key); });
            break;
          case SetOp::Contains:
            tracedOp(SetOp::Contains, Key,
                     [&] { return List->contains(Key); });
            break;
          case SetOp::RangeQuery:
            // Mutant fixtures (RacyList, ForgetfulList, ...) have no
            // scan; point-op scenarios drive them, so skip is safe.
            if constexpr (requires(std::vector<SetKey> &Out) {
                            List->rangeQuery(Key, KeyHi, Out);
                          })
              tracedRangeOp(Key, KeyHi, [&] {
                std::vector<SetKey> Keys;
                return List->rangeQuery(Key, KeyHi, Keys);
              });
            break;
          }
        }
      }));
    }
    return Ep;
  };
}

/// Convenience overload for default-constructible lists.
template <class ListT> EpisodeFactory factoryFor(const Scenario &S) {
  return factoryForWith(S, [] { return std::make_shared<ListT>(); });
}

} // namespace sched
} // namespace vbl

#endif // VBL_TESTS_SCHED_SCENARIOCORPUS_H
