//===- tests/sched/ScenarioCorpus.h - Shared exploration scenarios -------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scenario corpus driven through the InterleavingExplorer, shared
/// by the optimality test (Theorem 3 on the sequential spec LL) and the
/// race-detector tests (VblList / LazyList / HarrisMichaelList must
/// come back race-free over the same workloads). A scenario is a
/// prefill, one op program per thread, and the key universe the
/// correctness checker quantifies over.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_TESTS_SCHED_SCENARIOCORPUS_H
#define VBL_TESTS_SCHED_SCENARIOCORPUS_H

#include "sched/InterleavingExplorer.h"
#include "sched/TracedPolicy.h"

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace vbl {
namespace sched {

struct Scenario {
  std::string Name;
  std::vector<SetKey> Prefill;
  /// One op list per thread.
  std::vector<std::vector<std::pair<SetOp, SetKey>>> Programs;
  std::vector<SetKey> Universe;
  /// Exploration cap: multi-op scenarios only cover a deterministic
  /// lexicographic prefix of the interleaving tree.
  size_t MaxEpisodes = 60000;
};

inline std::vector<Scenario> scenarios() {
  return {
      {"fig2_insert_present_vs_insert", {1},
       {{{SetOp::Insert, 1}}, {{SetOp::Insert, 2}}}, {1, 2}, 60000},
      {"disjoint_inserts", {5},
       {{{SetOp::Insert, 1}}, {{SetOp::Insert, 9}}}, {1, 5, 9}, 60000},
      {"adjacent_inserts_empty", {},
       {{{SetOp::Insert, 1}}, {{SetOp::Insert, 2}}}, {1, 2}, 60000},
      {"insert_vs_remove_same_key", {4},
       {{{SetOp::Insert, 4}}, {{SetOp::Remove, 4}}}, {4}, 60000},
      {"remove_vs_remove_same_key", {3},
       {{{SetOp::Remove, 3}}, {{SetOp::Remove, 3}}}, {3}, 60000},
      {"remove_vs_contains", {2, 6},
       {{{SetOp::Remove, 2}}, {{SetOp::Contains, 2}}}, {2, 6}, 60000},
      {"disjoint_removes", {1, 5},
       {{{SetOp::Remove, 1}}, {{SetOp::Remove, 5}}}, {1, 5}, 60000},
      {"insert_after_vs_remove_before", {3},
       {{{SetOp::Insert, 7}}, {{SetOp::Remove, 3}}}, {3, 7}, 60000},
      // Multi-op and three-thread scenarios (capped exploration).
      {"two_ops_each", {2},
       {{{SetOp::Insert, 1}, {SetOp::Remove, 2}},
        {{SetOp::Insert, 2}, {SetOp::Contains, 1}}},
       {1, 2}, 3000},
      {"three_threads", {2},
       {{{SetOp::Insert, 1}}, {{SetOp::Remove, 2}},
        {{SetOp::Contains, 2}}},
       {1, 2}, 3000},
      {"toggle_chain", {},
       {{{SetOp::Insert, 5}, {SetOp::Remove, 5}},
        {{SetOp::Insert, 5}}},
       {5}, 3000},
  };
}

/// Builds an EpisodeFactory running the scenario's per-thread programs
/// against a fresh \p ListT (any list with insert/remove/contains,
/// headNode and nodeChain).
template <class ListT> EpisodeFactory factoryFor(const Scenario &S) {
  return [S]() -> Episode {
    auto List = std::make_shared<ListT>();
    for (SetKey Key : S.Prefill)
      List->insert(Key);
    Episode Ep;
    Ep.HeadNode = List->headNode();
    Ep.InitialChain = List->nodeChain();
    Ep.Holder = List;
    for (const auto &Program : S.Programs) {
      Ep.Bodies.push_back(std::function<void()>([List, Program] {
        for (const auto &[Op, Key] : Program) {
          switch (Op) {
          case SetOp::Insert:
            tracedOp(SetOp::Insert, Key,
                     [&] { return List->insert(Key); });
            break;
          case SetOp::Remove:
            tracedOp(SetOp::Remove, Key,
                     [&] { return List->remove(Key); });
            break;
          case SetOp::Contains:
            tracedOp(SetOp::Contains, Key,
                     [&] { return List->contains(Key); });
            break;
          }
        }
      }));
    }
    return Ep;
  };
}

} // namespace sched
} // namespace vbl

#endif // VBL_TESTS_SCHED_SCENARIOCORPUS_H
