//===- tests/sched/AdjustedSpecTest.cpp - §2.3 adjusted LL for HM --------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Soundness of the Harris-Michael list against the *adjusted*
/// sequential specification of §2.3 (logical-deletion-only removes,
/// delegated unlinks in traversals): every explored HM interleaving
/// must export a schedule that is locally serializable wrt the adjusted
/// spec and whose sigma-bar(v) extension linearizes, with membership
/// computed mark-aware.
///
//===----------------------------------------------------------------------===//

#include "lists/HarrisMichaelList.h"
#include "reclaim/LeakyDomain.h"
#include "sched/InterleavingExplorer.h"
#include "sched/ScheduleChecker.h"
#include "sched/ScheduleExport.h"

#include <gtest/gtest.h>

using namespace vbl;
using namespace vbl::sched;

namespace {

using TracedHm = HarrisMichaelList<reclaim::LeakyDomain, TracedPolicy>;

EpisodeFactory hmFactory(std::vector<SetKey> Prefill,
                         std::vector<std::pair<SetOp, SetKey>> Ops) {
  return [Prefill = std::move(Prefill),
          Ops = std::move(Ops)]() -> Episode {
    auto List = std::make_shared<TracedHm>();
    for (SetKey Key : Prefill)
      List->insert(Key);
    Episode Ep;
    Ep.HeadNode = List->headNode();
    Ep.InitialChain = List->nodeChain();
    Ep.Holder = List;
    for (const auto &Spec : Ops) {
      Ep.Bodies.push_back([List, Spec] {
        const auto [Op, Key] = Spec;
        switch (Op) {
        case SetOp::Insert:
          tracedOp(SetOp::Insert, Key, [&] { return List->insert(Key); });
          break;
        case SetOp::Remove:
          tracedOp(SetOp::Remove, Key, [&] { return List->remove(Key); });
          break;
        case SetOp::Contains:
          tracedOp(SetOp::Contains, Key,
                   [&] { return List->contains(Key); });
          break;
        case SetOp::RangeQuery:
          vbl_unreachable("point-op helper; scan scenarios live in "
                          "ScenarioCorpus.h");
        }
      });
    }
    return Ep;
  };
}

void checkAllAdjusted(std::vector<SetKey> Prefill,
                      std::vector<std::pair<SetOp, SetKey>> Ops,
                      std::vector<SetKey> Universe, size_t MaxEpisodes) {
  InterleavingExplorer Explorer(
      hmFactory(std::move(Prefill), std::move(Ops)));
  size_t Episodes = 0;
  Explorer.exploreAll(
      [&](const EpisodeResult &Result) {
        ++Episodes;
        ASSERT_FALSE(Result.Deadlocked);
        const Schedule Exported =
            exportLLSchedule(Result.Raw, Result.Meta.HeadNode);
        const CorrectnessResult Check =
            checkScheduleCorrect(Exported, Result.Meta.InitialChain,
                                 Universe, SpecKind::AdjustedLL);
        ASSERT_TRUE(Check.correct())
            << Check.Error << "\nexported:\n"
            << Exported.toString() << "raw:\n"
            << Result.Raw.toString();
      },
      MaxEpisodes);
  ASSERT_GT(Episodes, 50u);
}

} // namespace

TEST(AdjustedSpec, HmSequentialOpsValidate) {
  // Single-threaded: every op projection must match the adjusted spec.
  checkAllAdjusted({2, 4},
                   {{SetOp::Insert, 3},
                    {SetOp::Remove, 2},
                    {SetOp::Contains, 4}},
                   {2, 3, 4}, 4000);
}

TEST(AdjustedSpec, HmInsertVsRemove) {
  checkAllAdjusted({1},
                   {{SetOp::Insert, 1}, {SetOp::Remove, 1}}, {1}, 4000);
}

TEST(AdjustedSpec, HmRemoveVsRemove) {
  checkAllAdjusted({3},
                   {{SetOp::Remove, 3}, {SetOp::Remove, 3}}, {3}, 4000);
}

TEST(AdjustedSpec, HmDelegatedUnlinkValidates) {
  // A removal whose physical unlink loses to a concurrent insert on the
  // predecessor leaves a marked node behind; the next update's
  // traversal unlinks it. All of that must validate as adjusted-LL.
  checkAllAdjusted({2, 3},
                   {{SetOp::Insert, 1}, {SetOp::Remove, 2}}, {1, 2, 3},
                   6000);
}

TEST(AdjustedSpec, HmAdjacentInsertsOnEmpty) {
  checkAllAdjusted({}, {{SetOp::Insert, 1}, {SetOp::Insert, 2}}, {1, 2},
                   4000);
}

TEST(AdjustedSpec, HmContainsDuringRemoval) {
  checkAllAdjusted({5}, {{SetOp::Remove, 5}, {SetOp::Contains, 5}}, {5},
                   4000);
}
