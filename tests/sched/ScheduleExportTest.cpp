//===- tests/sched/ScheduleExportTest.cpp - Exporter unit tests ----------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Unit tests for the raw-trace -> LL-schedule projection: metadata
/// filtering, restart splicing (both from-head and from-prev), and
/// NewNode normalization.
///
//===----------------------------------------------------------------------===//

#include "sched/ScheduleExport.h"

#include "core/VblList.h"
#include "reclaim/LeakyDomain.h"
#include "sched/StepScheduler.h"

#include <gtest/gtest.h>

using namespace vbl;
using namespace vbl::sched;

namespace {

int Cells[8];
const void *head() { return &Cells[0]; }
const void *node(int I) { return &Cells[I]; }

Event mk(EventKind Kind, MemField Field, const void *Node, uint64_t Value,
         uint32_t Attempt = 0) {
  Event E;
  E.Thread = 0;
  E.OpIndex = 1;
  E.Attempt = Attempt;
  E.Kind = Kind;
  E.Field = Field;
  E.Node = Node;
  E.Value = Value;
  return E;
}

uint64_t ptrVal(const void *P) {
  return static_cast<uint64_t>(reinterpret_cast<uintptr_t>(P));
}

Event begin(SetOp Op, SetKey Key) {
  Event E;
  E.Thread = 0;
  E.OpIndex = 1;
  E.Kind = EventKind::OpBegin;
  E.Op = Op;
  E.Value = static_cast<uint64_t>(Key);
  return E;
}

Event end(bool Result) {
  Event E;
  E.Thread = 0;
  E.OpIndex = 1;
  E.Kind = EventKind::OpEnd;
  E.Value = Result;
  return E;
}

std::vector<EventKind> kinds(const std::vector<Event> &Events) {
  std::vector<EventKind> Out;
  for (const Event &E : Events)
    Out.push_back(E.Kind);
  return Out;
}

} // namespace

TEST(ScheduleExport, DropsMetadataEvents) {
  Schedule Raw({
      begin(SetOp::Contains, 5),
      mk(EventKind::Read, MemField::Marked, head(), 0),
      mk(EventKind::Read, MemField::Val, head(),
         static_cast<uint64_t>(MinSentinel)), // head.val read: dropped
      mk(EventKind::Read, MemField::Next, head(), ptrVal(node(1))),
      mk(EventKind::LockAcquire, MemField::Lock, node(1), 0),
      mk(EventKind::ReadCheck, MemField::Next, node(1), ptrVal(node(2))),
      mk(EventKind::Read, MemField::Val, node(1), 5),
      mk(EventKind::LockRelease, MemField::Lock, node(1), 0),
      end(true),
  });
  const auto Ops = exportOps(Raw, head());
  ASSERT_EQ(Ops.size(), 1u);
  EXPECT_EQ(kinds(Ops[0].Steps),
            (std::vector<EventKind>{EventKind::Read, EventKind::Read}));
  EXPECT_EQ(Ops[0].Steps[0].Field, MemField::Next);
  EXPECT_EQ(Ops[0].Steps[1].Field, MemField::Val);
}

TEST(ScheduleExport, RestartFromHeadDiscardsOldWalk) {
  Schedule Raw({
      begin(SetOp::Remove, 7),
      mk(EventKind::Read, MemField::Next, head(), ptrVal(node(1))),
      mk(EventKind::Read, MemField::Val, node(1), 7),
      mk(EventKind::Restart, MemField::Val, nullptr, 0),
      // Second attempt starts from the head again.
      mk(EventKind::Read, MemField::Next, head(), ptrVal(node(2)), 1),
      mk(EventKind::Read, MemField::Val, node(2), 9, 1),
      end(false),
  });
  const auto Ops = exportOps(Raw, head());
  ASSERT_EQ(Ops.size(), 1u);
  ASSERT_EQ(Ops[0].Steps.size(), 2u);
  EXPECT_EQ(Ops[0].Steps[0].Value, ptrVal(node(2)))
      << "only the final walk takes effect";
}

TEST(ScheduleExport, RestartFromPrevSplicesWalks) {
  // Walk head->n1(3)->n2(7: stale), restart continuing from n1, then
  // n1->n3(7 fresh). The spliced walk must read: next(head)=n1,
  // val(n1)=3, next(n1)=n3, val(n3)=7 — the stale tail is trimmed.
  Schedule Raw({
      begin(SetOp::Remove, 7),
      mk(EventKind::Read, MemField::Next, head(), ptrVal(node(1))),
      mk(EventKind::Read, MemField::Val, node(1), 3),
      mk(EventKind::Read, MemField::Next, node(1), ptrVal(node(2))),
      mk(EventKind::Read, MemField::Val, node(2), 7),
      mk(EventKind::Restart, MemField::Val, nullptr, 0),
      mk(EventKind::Read, MemField::Next, node(1), ptrVal(node(3)), 1),
      mk(EventKind::Read, MemField::Val, node(3), 7, 1),
      end(false),
  });
  const auto Ops = exportOps(Raw, head());
  ASSERT_EQ(Ops.size(), 1u);
  ASSERT_EQ(Ops[0].Steps.size(), 4u);
  EXPECT_EQ(Ops[0].Steps[0].Node, head());
  EXPECT_EQ(Ops[0].Steps[1].Node, node(1));
  EXPECT_EQ(Ops[0].Steps[2].Node, node(1));
  EXPECT_EQ(Ops[0].Steps[2].Value, ptrVal(node(3)));
  EXPECT_EQ(Ops[0].Steps[3].Node, node(3));
}

TEST(ScheduleExport, UnpublishedNewNodeDroppedOnCompletedOp) {
  // A VBL insert that created a node, then discovered the key present
  // after a retry: LL's failed insert creates nothing.
  Schedule Raw({
      begin(SetOp::Insert, 5),
      mk(EventKind::Read, MemField::Next, head(), ptrVal(node(1))),
      mk(EventKind::Read, MemField::Val, node(1), 9),
      mk(EventKind::NewNode, MemField::Val, node(4), 5),
      mk(EventKind::Restart, MemField::Val, nullptr, 0),
      mk(EventKind::Read, MemField::Next, head(), ptrVal(node(2)), 1),
      mk(EventKind::Read, MemField::Val, node(2), 5, 1),
      end(false),
  });
  const auto Ops = exportOps(Raw, head());
  ASSERT_EQ(Ops.size(), 1u);
  for (const Event &E : Ops[0].Steps)
    EXPECT_NE(E.Kind, EventKind::NewNode);
}

TEST(ScheduleExport, WritesToOwnNewNodeDropped) {
  Schedule Raw({
      begin(SetOp::Insert, 5),
      mk(EventKind::Read, MemField::Next, head(), ptrVal(node(1))),
      mk(EventKind::Read, MemField::Val, node(1), 9),
      mk(EventKind::NewNode, MemField::Val, node(4), 5),
      mk(EventKind::Write, MemField::Next, node(4), ptrVal(node(1))),
      mk(EventKind::Write, MemField::Next, head(), ptrVal(node(4))),
      end(true),
  });
  const auto Ops = exportOps(Raw, head());
  ASSERT_EQ(Ops.size(), 1u);
  EXPECT_EQ(kinds(Ops[0].Steps),
            (std::vector<EventKind>{EventKind::Read, EventKind::Read,
                                    EventKind::NewNode,
                                    EventKind::Write}));
  EXPECT_EQ(Ops[0].Steps.back().Node, head());
}

TEST(ScheduleExport, NewNodeReinsertedBeforePublishAfterRestartTrim) {
  // Creation in attempt 0, restart from head (walk cleared), publish in
  // attempt 1: the creation must be re-materialized before the publish.
  Schedule Raw({
      begin(SetOp::Insert, 5),
      mk(EventKind::Read, MemField::Next, head(), ptrVal(node(1))),
      mk(EventKind::Read, MemField::Val, node(1), 9),
      mk(EventKind::NewNode, MemField::Val, node(4), 5),
      mk(EventKind::Restart, MemField::Val, nullptr, 0),
      mk(EventKind::Read, MemField::Next, head(), ptrVal(node(2)), 1),
      mk(EventKind::Read, MemField::Val, node(2), 9, 1),
      mk(EventKind::Write, MemField::Next, head(), ptrVal(node(4)), 1),
      end(true),
  });
  const auto Ops = exportOps(Raw, head());
  ASSERT_EQ(Ops.size(), 1u);
  const auto Kinds = kinds(Ops[0].Steps);
  ASSERT_EQ(Kinds, (std::vector<EventKind>{EventKind::Read,
                                           EventKind::Read,
                                           EventKind::NewNode,
                                           EventKind::Write}));
}

TEST(ScheduleExport, CanonicalKeyIsAllocationInvariant) {
  // Two runs of the same VBL episode produce different addresses but
  // identical canonical keys.
  auto runOnce = [] {
    using TracedVbl = VblList<reclaim::LeakyDomain, TracedPolicy>;
    auto List = std::make_shared<TracedVbl>();
    List->insert(2);
    StepScheduler Sched({[List] {
      tracedOp(SetOp::Insert, 1, [&] { return List->insert(1); });
    }});
    EXPECT_TRUE(Sched.drain());
    return exportLLSchedule(Sched.schedule(), List->headNode())
        .canonicalKey();
  };
  EXPECT_EQ(runOnce(), runOnce());
}

TEST(ScheduleExport, FailedCasDropped) {
  Schedule Raw({
      begin(SetOp::Insert, 5),
      mk(EventKind::Read, MemField::Next, head(), ptrVal(node(1))),
      mk(EventKind::Read, MemField::Val, node(1), 9),
      mk(EventKind::NewNode, MemField::Val, node(4), 5),
      [&] {
        Event E = mk(EventKind::Cas, MemField::Next, head(),
                     ptrVal(node(4)));
        E.Value2 = 0; // failed
        return E;
      }(),
      [&] {
        Event E = mk(EventKind::Cas, MemField::Next, head(),
                     ptrVal(node(4)));
        E.Value2 = 1; // success: LL's write
        return E;
      }(),
      end(true),
  });
  const auto Ops = exportOps(Raw, head());
  ASSERT_EQ(Ops.size(), 1u);
  int CasCount = 0;
  for (const Event &E : Ops[0].Steps)
    CasCount += E.Kind == EventKind::Cas;
  EXPECT_EQ(CasCount, 1);
}
