//===- tests/sched/ScheduleUtilTest.cpp - Event/Schedule utilities -------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "sched/Event.h"

#include <gtest/gtest.h>

using namespace vbl;
using namespace vbl::sched;

namespace {

Event ev(uint32_t Thread, uint32_t OpIndex, EventKind Kind,
         const void *Node = nullptr, uint64_t Value = 0) {
  Event E;
  E.Thread = Thread;
  E.OpIndex = OpIndex;
  E.Kind = Kind;
  E.Node = Node;
  E.Value = Value;
  return E;
}

} // namespace

TEST(ScheduleUtil, OpProjectionFiltersByThreadAndOp) {
  Schedule S({ev(0, 1, EventKind::OpBegin), ev(1, 1, EventKind::OpBegin),
              ev(0, 1, EventKind::Read), ev(0, 2, EventKind::OpBegin),
              ev(1, 1, EventKind::OpEnd), ev(0, 1, EventKind::OpEnd)});
  const auto P01 = S.opProjection(0, 1);
  ASSERT_EQ(P01.size(), 3u);
  EXPECT_EQ(P01[0].Kind, EventKind::OpBegin);
  EXPECT_EQ(P01[1].Kind, EventKind::Read);
  EXPECT_EQ(P01[2].Kind, EventKind::OpEnd);
  EXPECT_EQ(S.opProjection(1, 1).size(), 2u);
  EXPECT_TRUE(S.opProjection(2, 1).empty());
}

TEST(ScheduleUtil, OperationsInFirstAppearanceOrder) {
  Schedule S({ev(1, 1, EventKind::OpBegin), ev(0, 1, EventKind::OpBegin),
              ev(1, 1, EventKind::OpEnd), ev(1, 2, EventKind::OpBegin)});
  const auto Ops = S.operations();
  ASSERT_EQ(Ops.size(), 3u);
  EXPECT_EQ(Ops[0], (std::pair<uint32_t, uint32_t>{1, 1}));
  EXPECT_EQ(Ops[1], (std::pair<uint32_t, uint32_t>{0, 1}));
  EXPECT_EQ(Ops[2], (std::pair<uint32_t, uint32_t>{1, 2}));
}

TEST(ScheduleUtil, CanonicalKeyRelabelsNodes) {
  int A, B;
  // Same shape, different node identities: identical canonical keys.
  Schedule S1({ev(0, 1, EventKind::Read, &A, 7)});
  Schedule S2({ev(0, 1, EventKind::Read, &B, 7)});
  EXPECT_EQ(S1.canonicalKey(), S2.canonicalKey());

  // Different event kinds: different keys.
  Schedule S3({ev(0, 1, EventKind::Write, &A, 7)});
  EXPECT_NE(S1.canonicalKey(), S3.canonicalKey());
}

TEST(ScheduleUtil, CanonicalKeyRelabelsNextValues) {
  int A, B, C;
  // next-reads whose VALUES are different addresses but the same
  // first-appearance pattern must compare equal.
  auto mkRead = [](const void *Node, const void *Target) {
    Event E;
    E.Kind = EventKind::Read;
    E.Field = MemField::Next;
    E.Node = Node;
    E.Value =
        static_cast<uint64_t>(reinterpret_cast<uintptr_t>(Target));
    return E;
  };
  Schedule S1({mkRead(&A, &B)});
  Schedule S2({mkRead(&B, &C)});
  EXPECT_EQ(S1.canonicalKey(), S2.canonicalKey());
  // Self-loop vs distinct target: different patterns.
  Schedule S3({mkRead(&A, &A)});
  EXPECT_NE(S1.canonicalKey(), S3.canonicalKey());
}

TEST(ScheduleUtil, ToStringMentionsEveryEvent) {
  Schedule S({ev(0, 1, EventKind::OpBegin), ev(0, 1, EventKind::Restart),
              ev(0, 1, EventKind::OpEnd)});
  const std::string Text = S.toString();
  EXPECT_NE(Text.find("begin"), std::string::npos);
  EXPECT_NE(Text.find("restart"), std::string::npos);
  EXPECT_NE(Text.find("end"), std::string::npos);
}
