//===- tests/sched/StepSchedulerTest.cpp - Deterministic stepping --------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "sched/StepScheduler.h"

#include "lists/SequentialList.h"
#include "sync/SpinLocks.h"

#include <gtest/gtest.h>

using namespace vbl;
using namespace vbl::sched;

namespace {

/// A tiny traced program: N shared accesses via TracedPolicy on a
/// dedicated atomic, recording into the episode trace.
std::function<void()> accessorBody(std::atomic<int64_t> &Cell,
                                   int Accesses) {
  return [&Cell, Accesses] {
    for (int I = 0; I != Accesses; ++I)
      TracedPolicy::read(Cell, std::memory_order_relaxed, &Cell,
                         MemField::Val);
  };
}

} // namespace

TEST(StepScheduler, SingleThreadRunsToCompletion) {
  std::atomic<int64_t> Cell{7};
  StepScheduler Sched({accessorBody(Cell, 3)});
  EXPECT_FALSE(Sched.finished(0));
  ASSERT_TRUE(Sched.drain());
  EXPECT_TRUE(Sched.allFinished());
  // 3 accesses recorded.
  EXPECT_EQ(Sched.trace().size(), 3u);
}

TEST(StepScheduler, StepGranularityIsOneAccess) {
  std::atomic<int64_t> Cell{0};
  StepScheduler Sched({accessorBody(Cell, 2)});
  Sched.step(0); // Runs to the first yield point: no access yet.
  EXPECT_EQ(Sched.trace().size(), 0u);
  Sched.step(0); // First access.
  EXPECT_EQ(Sched.trace().size(), 1u);
  Sched.step(0); // Second access; body then finishes.
  EXPECT_EQ(Sched.trace().size(), 2u);
  EXPECT_TRUE(Sched.finished(0));
}

TEST(StepScheduler, InterleavingFollowsGrants) {
  std::atomic<int64_t> A{0}, B{0};
  StepScheduler Sched({accessorBody(A, 2), accessorBody(B, 2)});
  // Park both at their first access.
  Sched.step(0);
  Sched.step(1);
  // Interleave: 1, 0, 0, 1.
  Sched.step(1);
  Sched.step(0);
  Sched.step(0);
  Sched.step(1);
  ASSERT_TRUE(Sched.drain());
  const auto &Trace = Sched.trace();
  ASSERT_EQ(Trace.size(), 4u);
  EXPECT_EQ(Trace[0].Thread, 1u);
  EXPECT_EQ(Trace[1].Thread, 0u);
  EXPECT_EQ(Trace[2].Thread, 0u);
  EXPECT_EQ(Trace[3].Thread, 1u);
}

TEST(StepScheduler, LockBlockingAndRelease) {
  TasLock Lock;
  auto Locker = [&Lock] {
    TracedPolicy::lockAcquire(Lock, &Lock);
    TracedPolicy::lockRelease(Lock, &Lock);
  };
  StepScheduler Sched({Locker, Locker});
  // T0 to its first yield, then acquire.
  Sched.step(0);
  Sched.step(0); // T0 holds the lock.
  // T1 tries: first step parks at yield, second attempts and blocks.
  Sched.step(1);
  Sched.step(1);
  EXPECT_TRUE(Sched.blocked(1));
  EXPECT_FALSE(Sched.runnable(1));
  // T0 releases: T1 becomes runnable again.
  Sched.step(0); // release
  EXPECT_FALSE(Sched.blocked(1));
  ASSERT_TRUE(Sched.drain());
  EXPECT_TRUE(Sched.allFinished());

  // Trace shape: acquire(T0), blocked(T1), release(T0), acquire(T1),
  // release(T1).
  std::vector<EventKind> Kinds;
  for (const Event &E : Sched.trace())
    Kinds.push_back(E.Kind);
  ASSERT_EQ(Kinds.size(), 5u);
  EXPECT_EQ(Kinds[0], EventKind::LockAcquire);
  EXPECT_EQ(Kinds[1], EventKind::LockBlocked);
  EXPECT_EQ(Kinds[2], EventKind::LockRelease);
  EXPECT_EQ(Kinds[3], EventKind::LockAcquire);
  EXPECT_EQ(Kinds[4], EventKind::LockRelease);
}

TEST(StepScheduler, TracedSequentialListOpsRecordLLEvents) {
  auto List = std::make_shared<SequentialList<TracedPolicy>>();
  List->insert(5); // Untraced setup (no context on this thread).
  StepScheduler Sched(
      {[List] { tracedOp(SetOp::Contains, 5, [&] { return List->contains(5); }); },
       [List] { tracedOp(SetOp::Insert, 3, [&] { return List->insert(3); }); }});
  ASSERT_TRUE(Sched.drain());

  // Results via OpEnd events.
  const auto Ends = Sched.opEndEvents();
  ASSERT_EQ(Ends.size(), 2u);
  for (const Event &E : Ends)
    EXPECT_EQ(E.Value, 1u) << "both ops must succeed";
  EXPECT_TRUE(List->contains(3));
  EXPECT_TRUE(List->contains(5));

  // The trace must contain reads, a node creation and a write.
  bool SawRead = false, SawNew = false, SawWrite = false;
  for (const Event &E : Sched.trace()) {
    SawRead |= E.Kind == EventKind::Read;
    SawNew |= E.Kind == EventKind::NewNode;
    SawWrite |= E.Kind == EventKind::Write;
  }
  EXPECT_TRUE(SawRead);
  EXPECT_TRUE(SawNew);
  EXPECT_TRUE(SawWrite);
}

TEST(StepScheduler, DeterministicReplayProducesIdenticalTraces) {
  auto makeEpisode = [] {
    auto List = std::make_shared<SequentialList<TracedPolicy>>();
    List->insert(2);
    std::vector<std::function<void()>> Bodies = {
        [List] { tracedOp(SetOp::Insert, 1, [&] { return List->insert(1); }); },
        [List] { tracedOp(SetOp::Remove, 2, [&] { return List->remove(2); }); }};
    return Bodies;
  };
  // Same alternating grant sequence twice: identical event kinds.
  std::vector<std::vector<EventKind>> Kinds(2);
  for (int Run = 0; Run != 2; ++Run) {
    StepScheduler Sched(makeEpisode());
    unsigned Next = 0;
    while (!Sched.allFinished()) {
      if (Sched.runnable(Next))
        Sched.step(Next);
      Next = 1 - Next;
    }
    for (const Event &E : Sched.trace())
      Kinds[Run].push_back(E.Kind);
  }
  EXPECT_EQ(Kinds[0], Kinds[1]);
}
