//===- tests/sched/ScheduleCheckerTest.cpp - Definition 1 tests ----------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Exercises the correct-schedule decision procedure (Definition 1) on
/// schedules *generated* by interleaving the sequential implementation
/// LL under the deterministic scheduler — including the paper's §2.2
/// lost-update example, which is linearizable as a truncated history
/// but fails the sigma-bar(v) extension.
///
//===----------------------------------------------------------------------===//

#include "sched/ScheduleChecker.h"

#include "lists/SequentialList.h"
#include "sched/InterleavingExplorer.h"
#include "sched/ScheduleExport.h"
#include "sched/StepScheduler.h"

#include <gtest/gtest.h>

using namespace vbl;
using namespace vbl::sched;

namespace {

/// Factory: fresh LL with \p Prefill, thread i running Programs[i].
EpisodeFactory llFactory(std::vector<SetKey> Prefill,
                         std::vector<std::vector<std::pair<SetOp, SetKey>>>
                             Programs) {
  return [Prefill = std::move(Prefill),
          Programs = std::move(Programs)]() -> Episode {
    auto List = std::make_shared<SequentialList<TracedPolicy>>();
    for (SetKey Key : Prefill)
      List->insert(Key);
    Episode Ep;
    Ep.HeadNode = List->headNode();
    Ep.InitialChain = List->nodeChain();
    Ep.Holder = List;
    for (const auto &Program : Programs) {
      Ep.Bodies.push_back([List, Program] {
        for (const auto &[Op, Key] : Program) {
          switch (Op) {
          case SetOp::Insert:
            tracedOp(SetOp::Insert, Key,
                     [&] { return List->insert(Key); });
            break;
          case SetOp::Remove:
            tracedOp(SetOp::Remove, Key,
                     [&] { return List->remove(Key); });
            break;
          case SetOp::Contains:
            tracedOp(SetOp::Contains, Key,
                     [&] { return List->contains(Key); });
            break;
          case SetOp::RangeQuery:
            vbl_unreachable("point-op helper; scan scenarios live in "
                            "ScenarioCorpus.h");
          }
        }
      });
    }
    return Ep;
  };
}

CorrectnessResult checkEpisode(const EpisodeResult &Result,
                               std::vector<SetKey> Universe) {
  const Schedule Exported =
      exportLLSchedule(Result.Raw, Result.Meta.HeadNode);
  return checkScheduleCorrect(Exported, Result.Meta.InitialChain,
                              Universe);
}

} // namespace

TEST(ScheduleChecker, SequentialEpisodeIsCorrect) {
  InterleavingExplorer Explorer(llFactory(
      {5}, {{{SetOp::Insert, 3}}, {{SetOp::Contains, 5}}}));
  // Default run = thread 0 fully, then thread 1: a sequential schedule.
  const EpisodeResult Result = Explorer.run({});
  const CorrectnessResult Check = checkEpisode(Result, {3, 5});
  EXPECT_TRUE(Check.correct()) << Check.Error;
}

TEST(ScheduleChecker, LostUpdateScheduleIsRejected) {
  // §2.2: insert(1) and insert(2) on the empty list both read head,
  // then both write head.next: the second write buries the first
  // insert's node. Locally serializable and "linearizable" as a
  // truncated history, but sigma-bar(v) fails.
  InterleavingExplorer Explorer(llFactory(
      {}, {{{SetOp::Insert, 1}}, {{SetOp::Insert, 2}}}));

  bool FoundLostUpdate = false;
  Explorer.exploreAll(
      [&](const EpisodeResult &Result) {
        const CorrectnessResult Check = checkEpisode(Result, {1, 2});
        if (Check.correct())
          return;
        // Every incorrect schedule here must be a lost update in which
        // both inserts returned true.
        unsigned TrueEnds = 0;
        for (const Event &E : Result.Raw.events())
          if (E.Kind == EventKind::OpEnd && E.Value == 1)
            ++TrueEnds;
        EXPECT_EQ(TrueEnds, 2u) << Result.Raw.toString();
        EXPECT_TRUE(Check.LocallySerializable)
            << "each op follows its own code, so condition (1) holds: "
            << Check.Error;
        EXPECT_FALSE(Check.Linearizable);
        FoundLostUpdate = true;
      },
      /*MaxEpisodes=*/20000);
  EXPECT_TRUE(FoundLostUpdate)
      << "exploration must hit the lost-update interleaving";
}

TEST(ScheduleChecker, AllInterleavingsOfDisjointInsertsAreCorrect) {
  // insert(1) and insert(10) into {5}: they write different prev nodes,
  // so every interleaving is correct.
  InterleavingExplorer Explorer(llFactory(
      {5}, {{{SetOp::Insert, 1}}, {{SetOp::Insert, 10}}}));
  size_t Episodes = 0, Correct = 0;
  Explorer.exploreAll(
      [&](const EpisodeResult &Result) {
        ++Episodes;
        const CorrectnessResult Check = checkEpisode(Result, {1, 5, 10});
        Correct += Check.correct();
        EXPECT_TRUE(Check.correct())
            << Check.Error << "\n"
            << exportLLSchedule(Result.Raw, Result.Meta.HeadNode)
                   .toString();
      },
      /*MaxEpisodes=*/20000);
  EXPECT_GT(Episodes, 1u);
  EXPECT_EQ(Episodes, Correct);
}

TEST(ScheduleChecker, ConcurrentInsertRemoveMixHasBothKinds) {
  // insert(1) vs remove(1) on {1}: some interleavings are correct
  // (sequentialized), others lose an update (remove unlinks while the
  // insert's already-read prev bypasses it, etc.).
  InterleavingExplorer Explorer(llFactory(
      {1, 5}, {{{SetOp::Insert, 3}}, {{SetOp::Remove, 1}}}));
  size_t Correct = 0, Incorrect = 0;
  Explorer.exploreAll(
      [&](const EpisodeResult &Result) {
        const CorrectnessResult Check = checkEpisode(Result, {1, 3, 5});
        if (Check.correct())
          ++Correct;
        else
          ++Incorrect;
      },
      /*MaxEpisodes=*/20000);
  EXPECT_GT(Correct, 0u);
  EXPECT_GT(Incorrect, 0u)
      << "unsynchronized LL must exhibit incorrect interleavings";
}

TEST(ScheduleChecker, ReconstructionMatchesActualFinalState) {
  InterleavingExplorer Explorer(llFactory(
      {2, 4}, {{{SetOp::Insert, 3}, {SetOp::Remove, 2}},
               {{SetOp::Contains, 4}}}));
  const EpisodeResult Result = Explorer.run({});
  std::vector<SetKey> Reconstructed;
  ASSERT_TRUE(reconstructFinalState(
      exportLLSchedule(Result.Raw, Result.Meta.HeadNode),
      Result.Meta.InitialChain, Reconstructed));
  // Sequential-ish run: final state is {3, 4}.
  EXPECT_EQ(Reconstructed, (std::vector<SetKey>{3, 4}));
}

TEST(ScheduleChecker, ExplorerEnumeratesDistinctInterleavings) {
  InterleavingExplorer Explorer(llFactory(
      {}, {{{SetOp::Contains, 1}}, {{SetOp::Contains, 2}}}));
  std::vector<std::string> Keys;
  const size_t Episodes = Explorer.exploreAll(
      [&](const EpisodeResult &Result) {
        Keys.push_back(Result.Raw.canonicalKey());
      },
      /*MaxEpisodes=*/20000);
  EXPECT_EQ(Episodes, Keys.size());
  // All enumerated choice sequences are distinct executions.
  std::sort(Keys.begin(), Keys.end());
  EXPECT_EQ(std::adjacent_find(Keys.begin(), Keys.end()), Keys.end());
  // Two contains ops with 3 accesses each (plus begin/end bookkeeping)
  // must yield more than a handful of interleavings.
  EXPECT_GT(Episodes, 10u);
}
