//===- tests/sched/DeadlockDetectionTest.cpp - Scheduler wedge cases -----===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// The step scheduler's job includes *reporting* deadlocks, not just
/// avoiding them: a genuinely wedged episode (classic ABBA locking)
/// must make drain() return false, and the destructor must refuse to
/// leak the wedged threads silently (it aborts — checked with a death
/// test). None of the repo's algorithms can reach this state (their
/// lock orders are consistent); this test drives it with raw bodies.
///
//===----------------------------------------------------------------------===//

#include "sched/StepScheduler.h"

#include "sync/SpinLocks.h"

#include <gtest/gtest.h>

using namespace vbl;
using namespace vbl::sched;

namespace {

/// Two threads taking two locks in opposite orders; steered into the
/// wedge by the scheduler.
struct AbbaRig {
  TasLock A, B;

  std::vector<std::function<void()>> bodies() {
    return {[this] {
              TracedPolicy::lockAcquire(A, &A);
              TracedPolicy::lockAcquire(B, &B);
              TracedPolicy::lockRelease(B, &B);
              TracedPolicy::lockRelease(A, &A);
            },
            [this] {
              TracedPolicy::lockAcquire(B, &B);
              TracedPolicy::lockAcquire(A, &A);
              TracedPolicy::lockRelease(A, &A);
              TracedPolicy::lockRelease(B, &B);
            }};
  }
};

} // namespace

TEST(DeadlockDetection, DrainReportsAbbaWedge) {
  // GTEST_FLAG_SET only exists from googletest 1.12; fall back to the
  // flag variable on older installs (conda ships 1.11).
#ifdef GTEST_FLAG_SET
  GTEST_FLAG_SET(death_test_style, "threadsafe");
#else
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
#endif
  // The wedged scheduler cannot be destroyed (its workers are parked
  // forever), so the whole experiment runs in a death-test child that
  // is expected to abort in the destructor.
  EXPECT_DEATH(
      {
        AbbaRig Rig;
        StepScheduler Sched(Rig.bodies());
        // T0: reach first yield, acquire A, park before acquiring B.
        Sched.step(0);
        Sched.step(0);
        // T1: reach first yield, acquire B, then try A -> blocked.
        Sched.step(1);
        Sched.step(1);
        Sched.step(1);
        // T0: try B -> blocked. Both blocked: wedged.
        Sched.step(0);
        if (!Sched.blocked(0) || !Sched.blocked(1))
          std::abort(); // Wrong steering would be a test bug; die too.
        if (Sched.drain())
          _exit(0); // Drain must NOT succeed; exiting 0 fails the test.
        std::fputs("drain reported deadlock\n", stderr);
        // Destructor aborts: the required behaviour under wedge.
      },
      "drain reported deadlock");
}

TEST(DeadlockDetection, ConsistentOrderDoesNotWedge) {
  // Same locks, same steering attempt, but both threads take A then B:
  // the scheduler must always be able to drain.
  TasLock A, B;
  auto Body = [&] {
    TracedPolicy::lockAcquire(A, &A);
    TracedPolicy::lockAcquire(B, &B);
    TracedPolicy::lockRelease(B, &B);
    TracedPolicy::lockRelease(A, &A);
  };
  StepScheduler Sched({Body, Body});
  Sched.step(0);
  Sched.step(0); // T0 holds A.
  Sched.step(1);
  Sched.step(1); // T1 blocks on A.
  EXPECT_TRUE(Sched.blocked(1));
  EXPECT_TRUE(Sched.drain());
  EXPECT_TRUE(Sched.allFinished());
}
