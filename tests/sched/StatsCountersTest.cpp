//===- tests/sched/StatsCountersTest.cpp - Exact counters per schedule ---===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic-scheduler integration for the observability layer: a
/// fixed schedule must produce exactly the same counters every time,
/// and schedules constructed to contain (or exclude) contention must
/// show exactly the rejection events the paper's metrics are built on.
///
/// Two fixtures per structure (VBL, Lazy, Harris-Michael):
///  - a fully serial schedule (lowest-runnable-first) where every
///    contention counter is exactly zero and list.traversals equals the
///    number of operations executed;
///  - a greedy-alternation schedule over two conflicting inserts, which
///    forces each structure's signature rejection (value-validation
///    abort, validation abort, CAS failure), recorded as a grant
///    sequence and replayed twice through InterleavingExplorer::run to
///    check the counters are an exact function of the schedule.
///
//===----------------------------------------------------------------------===//

#include "core/VblList.h"
#include "lists/HarrisMichaelList.h"
#include "lists/LazyList.h"
#include "reclaim/LeakyDomain.h"
#include "sched/InterleavingExplorer.h"
#include "sched/ScenarioCorpus.h"
#include "stats/Stats.h"

#include <gtest/gtest.h>

#include <vector>

using namespace vbl;
using namespace vbl::sched;

namespace {

using TracedVbl = VblList<reclaim::LeakyDomain, TracedPolicy>;
using TracedLazy = LazyList<reclaim::LeakyDomain, TracedPolicy>;
using TracedHm = HarrisMichaelList<reclaim::LeakyDomain, TracedPolicy>;

/// The counters that are a pure function of the schedule. Pool and
/// reclamation counters are excluded on purpose: the node pool's
/// thread-local free lists stay warm across episodes, so hit/miss
/// ratios legitimately differ between a first run and a replay.
constexpr stats::Counter ScheduleCounters[] = {
    stats::Counter::ListTraversals,
    stats::Counter::ListTraversalHops,
    stats::Counter::ListRestarts,
    stats::Counter::ListCasFailures,
    stats::Counter::ListTrylockFailures,
    stats::Counter::ListValidationAborts,
    stats::Counter::ListValueValidationAborts,
    stats::Counter::LockAcquireRetries,
    stats::Counter::LockOptimisticRetries,
};

constexpr stats::Counter ContentionCounters[] = {
    stats::Counter::ListRestarts,
    stats::Counter::ListCasFailures,
    stats::Counter::ListTrylockFailures,
    stats::Counter::ListValidationAborts,
    stats::Counter::ListValueValidationAborts,
    stats::Counter::LockAcquireRetries,
    stats::Counter::LockOptimisticRetries,
};

void expectSameScheduleCounters(const stats::Snapshot &A,
                                const stats::Snapshot &B,
                                const char *What) {
  for (stats::Counter C : ScheduleCounters)
    EXPECT_EQ(A.get(C), B.get(C))
        << What << ": " << stats::counterName(C)
        << " is not a function of the schedule";
}

/// Serial fixed schedule: thread 0 runs to completion, then thread 1.
/// Exact expectations: one traversal per operation (prefill included),
/// zero for every contention counter.
template <class ListT> void serialScheduleExactCounters() {
  const Scenario S{"serial_disjoint_inserts",
                   {5},
                   {{{SetOp::Insert, 1}}, {{SetOp::Insert, 9}}},
                   {1, 5, 9},
                   1};
  InterleavingExplorer Explorer(factoryFor<ListT>(S));
  const stats::Snapshot Before = stats::snapshotAll();
  const EpisodeResult R = Explorer.run({});
  const stats::Snapshot D = stats::snapshotAll().delta(Before);
  EXPECT_FALSE(R.Deadlocked);
  if (!stats::Enabled)
    return;
  // Prefill insert(5) plus the two episode inserts: three operations,
  // each exactly one traversal in a serial execution.
  EXPECT_EQ(D.get(stats::Counter::ListTraversals), 3u);
  for (stats::Counter C : ContentionCounters)
    EXPECT_EQ(D.get(C), 0u) << stats::counterName(C)
                            << " nonzero in a serial schedule";
  // Every traversal lands in exactly one hop-histogram bucket.
  uint64_t HistTotal = 0;
  for (uint64_t V : D.hist(stats::Histogram::TraversalHops))
    HistTotal += V;
  EXPECT_EQ(HistTotal, D.get(stats::Counter::ListTraversals));
}

/// Drives a fresh episode with greedy alternation (prefer the thread
/// that did not run last), returning the actual grant sequence. Two
/// lockstep inserts into an empty list conflict on the head window in
/// every structure.
std::vector<unsigned> runAlternating(const EpisodeFactory &Factory) {
  Episode Ep = Factory();
  StepScheduler Sched(Ep.Bodies);
  std::vector<unsigned> Choices;
  unsigned Last = 1;
  for (;;) {
    const std::vector<unsigned> Runnable = Sched.runnableThreads();
    if (Runnable.empty())
      break;
    unsigned Pick = Runnable.front();
    for (unsigned T : Runnable)
      if (T == 1 - Last)
        Pick = T;
    Sched.step(Pick);
    Choices.push_back(Pick);
    Last = Pick;
    EXPECT_LT(Choices.size(), 100000u) << "alternation diverged";
    if (Choices.size() >= 100000u)
      break;
  }
  EXPECT_TRUE(Sched.allFinished());
  return Choices;
}

/// Contended fixed schedule: record the alternation schedule, then
/// replay it twice and require counter-for-counter equality, at least
/// one signature rejection, and exact zero on the rejection kinds the
/// structure cannot produce.
template <class ListT>
void contendedScheduleExactCounters(
    const Scenario &S, const std::vector<stats::Counter> &Signature,
    const std::vector<stats::Counter> &NeverFires) {
  const EpisodeFactory Factory = factoryFor<ListT>(S);

  const stats::Snapshot B0 = stats::snapshotAll();
  const std::vector<unsigned> Choices = runAlternating(Factory);
  const stats::Snapshot D0 = stats::snapshotAll().delta(B0);
  ASSERT_FALSE(Choices.empty());

  InterleavingExplorer Explorer(Factory);
  const stats::Snapshot B1 = stats::snapshotAll();
  const EpisodeResult R1 = Explorer.run(Choices);
  const stats::Snapshot D1 = stats::snapshotAll().delta(B1);
  const stats::Snapshot B2 = stats::snapshotAll();
  const EpisodeResult R2 = Explorer.run(Choices);
  const stats::Snapshot D2 = stats::snapshotAll().delta(B2);
  EXPECT_FALSE(R1.Deadlocked);
  EXPECT_FALSE(R2.Deadlocked);
  EXPECT_EQ(R1.Choices, Choices);
  EXPECT_EQ(R2.Choices, Choices);

  if (!stats::Enabled)
    return;
  expectSameScheduleCounters(D0, D1, "record vs first replay");
  expectSameScheduleCounters(D1, D2, "first vs second replay");

  uint64_t SignatureEvents = 0;
  for (stats::Counter C : Signature)
    SignatureEvents += D1.get(C);
  EXPECT_GE(SignatureEvents, 1u)
      << "alternation schedule produced no contention";
  for (stats::Counter C : NeverFires)
    EXPECT_EQ(D1.get(C), 0u)
        << stats::counterName(C) << " cannot fire for this structure";
}

/// Two inserts racing for the head window of an empty list: every
/// structure conflicts on (head, tail).
Scenario adjacentInserts() {
  return {"contended_adjacent_inserts",
          {},
          {{{SetOp::Insert, 1}}, {{SetOp::Insert, 2}}},
          {1, 2},
          1};
}

/// Two removals of the same present key: the loser revalidates against
/// a successor whose value changed — VBL's lockNextAtValue path.
Scenario duplicateRemoves() {
  return {"contended_duplicate_removes",
          {4},
          {{{SetOp::Remove, 4}}, {{SetOp::Remove, 4}}},
          {4},
          1};
}

} // namespace

TEST(StatsCounters, VblSerialScheduleIsContentionFree) {
  serialScheduleExactCounters<TracedVbl>();
}

TEST(StatsCounters, LazySerialScheduleIsContentionFree) {
  serialScheduleExactCounters<TracedLazy>();
}

TEST(StatsCounters, HarrisMichaelSerialScheduleIsContentionFree) {
  serialScheduleExactCounters<TracedHm>();
}

TEST(StatsCounters, VblContendedInsertsCountTrylockFailures) {
  // VBL inserts validate the successor's *identity* (§3.1 lockNextAt):
  // the loser's try-lock-and-validate fails and restarts.
  contendedScheduleExactCounters<TracedVbl>(
      adjacentInserts(), {stats::Counter::ListTrylockFailures},
      {stats::Counter::ListCasFailures,
       stats::Counter::ListValidationAborts});
}

TEST(StatsCounters, VblContendedRemovesCountValueValidationAborts) {
  // Removals take the §3.1 value-based path (lockNextAtValue): the
  // losing remover's validation against the successor value fails.
  contendedScheduleExactCounters<TracedVbl>(
      duplicateRemoves(), {stats::Counter::ListValueValidationAborts},
      {stats::Counter::ListCasFailures,
       stats::Counter::ListValidationAborts});
}

TEST(StatsCounters, LazyContendedScheduleCountsValidationAborts) {
  // Lazy locks then validates (§2.3): the loser of the head window
  // aborts validation exactly once and restarts.
  contendedScheduleExactCounters<TracedLazy>(
      adjacentInserts(), {stats::Counter::ListValidationAborts},
      {stats::Counter::ListCasFailures,
       stats::Counter::ListTrylockFailures,
       stats::Counter::ListValueValidationAborts});
}

TEST(StatsCounters, HarrisMichaelContendedScheduleCountsCasFailures) {
  // Lock-free: the loser's publish CAS fails against the stale window.
  contendedScheduleExactCounters<TracedHm>(
      adjacentInserts(), {stats::Counter::ListCasFailures},
      {stats::Counter::ListTrylockFailures,
       stats::Counter::ListValidationAborts,
       stats::Counter::ListValueValidationAborts,
       stats::Counter::LockAcquireRetries});
}
