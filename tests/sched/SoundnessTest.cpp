//===- tests/sched/SoundnessTest.cpp - Theorems 1 & 2, empirically -------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// The soundness half of the paper: *every* schedule VBL exports is
/// correct (Theorem 2: locally serializable wrt LL; Theorem 1: and
/// linearizable). We model-check it by exploring interleavings of VBL
/// itself — at the granularity of its real shared accesses, lock
/// acquisitions included — and running every exported schedule through
/// the Definition 1 checker. The Lazy list gets the same treatment
/// (it is correct too, just not optimal), and every explored episode
/// additionally proves deadlock-freedom: the scheduler would report a
/// drain failure if lock-based episodes could wedge.
///
/// Exploration is capped: the visited set is a deterministic
/// lexicographic prefix of the full interleaving tree.
///
//===----------------------------------------------------------------------===//

#include "core/VblList.h"
#include "lists/LazyList.h"
#include "reclaim/LeakyDomain.h"
#include "sched/InterleavingExplorer.h"
#include "sched/ScheduleChecker.h"
#include "sched/ScheduleExport.h"

#include <gtest/gtest.h>

using namespace vbl;
using namespace vbl::sched;

namespace {

using TracedVbl = VblList<reclaim::LeakyDomain, TracedPolicy>;
using TracedLazy = LazyList<reclaim::LeakyDomain, TracedPolicy>;

struct Program {
  std::vector<std::pair<SetOp, SetKey>> Ops;
};

template <class ListT>
EpisodeFactory factoryFor(std::vector<SetKey> Prefill,
                          std::vector<Program> Programs) {
  return [Prefill = std::move(Prefill),
          Programs = std::move(Programs)]() -> Episode {
    auto List = std::make_shared<ListT>();
    for (SetKey Key : Prefill)
      List->insert(Key);
    Episode Ep;
    Ep.HeadNode = List->headNode();
    Ep.InitialChain = List->nodeChain();
    Ep.Holder = List;
    for (const Program &P : Programs) {
      Ep.Bodies.push_back([List, P] {
        for (const auto &[Op, Key] : P.Ops) {
          switch (Op) {
          case SetOp::Insert:
            tracedOp(SetOp::Insert, Key,
                     [&] { return List->insert(Key); });
            break;
          case SetOp::Remove:
            tracedOp(SetOp::Remove, Key,
                     [&] { return List->remove(Key); });
            break;
          case SetOp::Contains:
            tracedOp(SetOp::Contains, Key,
                     [&] { return List->contains(Key); });
            break;
          case SetOp::RangeQuery:
            vbl_unreachable("point-op helper; scan scenarios live in "
                            "ScenarioCorpus.h");
          }
        }
      });
    }
    return Ep;
  };
}

template <class ListT>
void checkAllExportsCorrect(std::vector<SetKey> Prefill,
                            std::vector<Program> Programs,
                            std::vector<SetKey> Universe,
                            size_t MaxEpisodes) {
  InterleavingExplorer Explorer(
      factoryFor<ListT>(std::move(Prefill), std::move(Programs)));
  size_t Episodes = 0;
  Explorer.exploreAll(
      [&](const EpisodeResult &Result) {
        ++Episodes;
        ASSERT_FALSE(Result.Deadlocked)
            << "deadlock-freedom violated:\n"
            << Result.Raw.toString();
        const Schedule Exported =
            exportLLSchedule(Result.Raw, Result.Meta.HeadNode);
        const CorrectnessResult Check = checkScheduleCorrect(
            Exported, Result.Meta.InitialChain, Universe);
        ASSERT_TRUE(Check.correct())
            << Check.Error << "\nexported:\n"
            << Exported.toString() << "raw:\n"
            << Result.Raw.toString();
      },
      MaxEpisodes);
  ASSERT_GT(Episodes, 50u);
}

} // namespace

TEST(Soundness, VblInsertVsRemoveSameKey) {
  checkAllExportsCorrect<TracedVbl>(
      {1}, {Program{{{SetOp::Insert, 1}}}, Program{{{SetOp::Remove, 1}}}},
      {1}, 4000);
}

TEST(Soundness, VblAdjacentInsertsOnEmpty) {
  checkAllExportsCorrect<TracedVbl>(
      {}, {Program{{{SetOp::Insert, 1}}}, Program{{{SetOp::Insert, 2}}}},
      {1, 2}, 4000);
}

TEST(Soundness, VblRemoveVsRemove) {
  checkAllExportsCorrect<TracedVbl>(
      {3, 5},
      {Program{{{SetOp::Remove, 3}}}, Program{{{SetOp::Remove, 3}}}},
      {3, 5}, 4000);
}

TEST(Soundness, VblTwoOpsPerThread) {
  checkAllExportsCorrect<TracedVbl>(
      {2},
      {Program{{{SetOp::Insert, 1}, {SetOp::Remove, 2}}},
       Program{{{SetOp::Insert, 2}, {SetOp::Contains, 1}}}},
      {1, 2}, 4000);
}

TEST(Soundness, LazyInsertVsRemoveSameKey) {
  checkAllExportsCorrect<TracedLazy>(
      {1}, {Program{{{SetOp::Insert, 1}}}, Program{{{SetOp::Remove, 1}}}},
      {1}, 4000);
}

TEST(Soundness, LazyAdjacentInserts) {
  checkAllExportsCorrect<TracedLazy>(
      {}, {Program{{{SetOp::Insert, 1}}}, Program{{{SetOp::Insert, 2}}}},
      {1, 2}, 4000);
}

TEST(Soundness, VblThreeThreads) {
  checkAllExportsCorrect<TracedVbl>(
      {2},
      {Program{{{SetOp::Insert, 1}}}, Program{{{SetOp::Remove, 2}}},
       Program{{{SetOp::Contains, 1}}}},
      {1, 2}, 4000);
}
