//===- tests/sched/OptimalityTest.cpp - Theorem 3, empirically -----------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Empirical check of Theorem 3 (concurrency-optimality) on exhaustively
/// explored scenarios: every interleaving of the *sequential* list code
/// LL is generated, filtered by Definition 1 (correct schedules), and
/// replayed against VBL — which must accept every single one. The same
/// correct schedules replayed against the Lazy list demonstrate its
/// suboptimality: at least one correct schedule is rejected.
///
/// Scenario sizes are chosen so full exploration stays in the hundreds
/// to low thousands of interleavings.
///
//===----------------------------------------------------------------------===//

#include "core/VblList.h"
#include "lists/LazyList.h"
#include "lists/SequentialList.h"
#include "reclaim/LeakyDomain.h"
#include "sched/InterleavingExplorer.h"
#include "sched/ScheduleChecker.h"
#include "sched/ScheduleExport.h"

#include "ScenarioCorpus.h"

#include <gtest/gtest.h>

using namespace vbl;
using namespace vbl::sched;

namespace {

using TracedVbl = VblList<reclaim::LeakyDomain, TracedPolicy>;
using TracedLazy = LazyList<reclaim::LeakyDomain, TracedPolicy>;
using TracedLL = SequentialList<TracedPolicy>;

struct ScenarioStats {
  size_t Interleavings = 0;
  size_t CorrectDistinct = 0;
  size_t VblAccepted = 0;
  size_t LazyAccepted = 0;
  size_t LazyRejected = 0;
};

ScenarioStats runScenario(const Scenario &S) {
  ScenarioStats Stats;
  InterleavingExplorer Explorer(factoryFor<TracedLL>(S));

  // Distinct *exported* correct schedules (many interleavings export
  // the same schedule; replay once per schedule).
  std::vector<std::pair<std::string, Schedule>> Correct;
  Stats.Interleavings = Explorer.exploreAll(
      [&](const EpisodeResult &Result) {
        const Schedule Exported =
            exportLLSchedule(Result.Raw, Result.Meta.HeadNode);
        const CorrectnessResult Check = checkScheduleCorrect(
            Exported, Result.Meta.InitialChain, S.Universe);
        if (!Check.correct())
          return;
        const std::string Key = Exported.canonicalKey();
        for (const auto &[Seen, Sched] : Correct)
          if (Seen == Key)
            return;
        Correct.emplace_back(Key, Exported);
      },
      S.MaxEpisodes);
  Stats.CorrectDistinct = Correct.size();

  for (const auto &[Key, Target] : Correct) {
    const ReplayResult OnVbl =
        replaySchedule(factoryFor<TracedVbl>(S), Target);
    EXPECT_TRUE(OnVbl.Accepted)
        << S.Name << ": VBL rejected a correct schedule: " << OnVbl.Reason
        << "\nschedule:\n"
        << Target.toString() << "raw:\n"
        << OnVbl.RawTrace.toString();
    Stats.VblAccepted += OnVbl.Accepted;

    const ReplayResult OnLazy =
        replaySchedule(factoryFor<TracedLazy>(S), Target);
    ++(OnLazy.Accepted ? Stats.LazyAccepted : Stats.LazyRejected);
  }
  return Stats;
}

class OptimalityTest : public ::testing::TestWithParam<Scenario> {};

} // namespace

TEST_P(OptimalityTest, VblAcceptsEveryCorrectSchedule) {
  const Scenario &S = GetParam();
  const ScenarioStats Stats = runScenario(S);
  ASSERT_GT(Stats.Interleavings, 1u);
  ASSERT_GT(Stats.CorrectDistinct, 0u);
  EXPECT_EQ(Stats.VblAccepted, Stats.CorrectDistinct)
      << S.Name << ": VBL must accept all correct schedules (Theorem 3)";
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, OptimalityTest, ::testing::ValuesIn(scenarios()),
    [](const ::testing::TestParamInfo<Scenario> &Info) {
      return Info.param.Name;
    });

TEST(OptimalitySummary, LazyListIsSuboptimal) {
  // Across the Fig. 2 scenario the Lazy list must reject at least one
  // correct schedule (the one of Fig. 2) while accepting others — the
  // suboptimality half of §2.3.
  size_t Accepted = 0, Rejected = 0;
  for (const Scenario &S : scenarios()) {
    if (S.Name != "fig2_insert_present_vs_insert")
      continue;
    const ScenarioStats Stats = runScenario(S);
    Accepted += Stats.LazyAccepted;
    Rejected += Stats.LazyRejected;
  }
  EXPECT_GT(Rejected, 0u) << "Lazy accepted every correct schedule?!";
  EXPECT_GT(Accepted, 0u) << "Lazy rejected every correct schedule?!";
}
