//===- tests/sched/OptimalityTest.cpp - Theorem 3, empirically -----------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Empirical check of Theorem 3 (concurrency-optimality) on exhaustively
/// explored scenarios: every interleaving of the *sequential* list code
/// LL is generated, filtered by Definition 1 (correct schedules), and
/// replayed against VBL — which must accept every single one. The same
/// correct schedules replayed against the Lazy list demonstrate its
/// suboptimality: at least one correct schedule is rejected.
///
/// Scenario sizes are chosen so full exploration stays in the hundreds
/// to low thousands of interleavings.
///
//===----------------------------------------------------------------------===//

#include "core/VblList.h"
#include "lists/LazyList.h"
#include "lists/SequentialList.h"
#include "reclaim/LeakyDomain.h"
#include "sched/InterleavingExplorer.h"
#include "sched/ScheduleChecker.h"
#include "sched/ScheduleExport.h"

#include <gtest/gtest.h>

using namespace vbl;
using namespace vbl::sched;

namespace {

using TracedVbl = VblList<reclaim::LeakyDomain, TracedPolicy>;
using TracedLazy = LazyList<reclaim::LeakyDomain, TracedPolicy>;
using TracedLL = SequentialList<TracedPolicy>;

struct Scenario {
  std::string Name;
  std::vector<SetKey> Prefill;
  /// One op list per thread.
  std::vector<std::vector<std::pair<SetOp, SetKey>>> Programs;
  std::vector<SetKey> Universe;
  /// Exploration cap: multi-op scenarios only cover a deterministic
  /// lexicographic prefix of the interleaving tree.
  size_t MaxEpisodes = 60000;
};

std::vector<Scenario> scenarios() {
  return {
      {"fig2_insert_present_vs_insert", {1},
       {{{SetOp::Insert, 1}}, {{SetOp::Insert, 2}}}, {1, 2}, 60000},
      {"disjoint_inserts", {5},
       {{{SetOp::Insert, 1}}, {{SetOp::Insert, 9}}}, {1, 5, 9}, 60000},
      {"adjacent_inserts_empty", {},
       {{{SetOp::Insert, 1}}, {{SetOp::Insert, 2}}}, {1, 2}, 60000},
      {"insert_vs_remove_same_key", {4},
       {{{SetOp::Insert, 4}}, {{SetOp::Remove, 4}}}, {4}, 60000},
      {"remove_vs_remove_same_key", {3},
       {{{SetOp::Remove, 3}}, {{SetOp::Remove, 3}}}, {3}, 60000},
      {"remove_vs_contains", {2, 6},
       {{{SetOp::Remove, 2}}, {{SetOp::Contains, 2}}}, {2, 6}, 60000},
      {"disjoint_removes", {1, 5},
       {{{SetOp::Remove, 1}}, {{SetOp::Remove, 5}}}, {1, 5}, 60000},
      {"insert_after_vs_remove_before", {3},
       {{{SetOp::Insert, 7}}, {{SetOp::Remove, 3}}}, {3, 7}, 60000},
      // Multi-op and three-thread scenarios (capped exploration).
      {"two_ops_each", {2},
       {{{SetOp::Insert, 1}, {SetOp::Remove, 2}},
        {{SetOp::Insert, 2}, {SetOp::Contains, 1}}},
       {1, 2}, 3000},
      {"three_threads", {2},
       {{{SetOp::Insert, 1}}, {{SetOp::Remove, 2}},
        {{SetOp::Contains, 2}}},
       {1, 2}, 3000},
      {"toggle_chain", {},
       {{{SetOp::Insert, 5}, {SetOp::Remove, 5}},
        {{SetOp::Insert, 5}}},
       {5}, 3000},
  };
}

template <class ListT> EpisodeFactory factoryFor(const Scenario &S) {
  return [S]() -> Episode {
    auto List = std::make_shared<ListT>();
    for (SetKey Key : S.Prefill)
      List->insert(Key);
    Episode Ep;
    Ep.HeadNode = List->headNode();
    Ep.InitialChain = List->nodeChain();
    Ep.Holder = List;
    for (const auto &Program : S.Programs) {
      Ep.Bodies.push_back(std::function<void()>([List, Program] {
        for (const auto &[Op, Key] : Program) {
          switch (Op) {
          case SetOp::Insert:
            tracedOp(SetOp::Insert, Key,
                     [&] { return List->insert(Key); });
            break;
          case SetOp::Remove:
            tracedOp(SetOp::Remove, Key,
                     [&] { return List->remove(Key); });
            break;
          case SetOp::Contains:
            tracedOp(SetOp::Contains, Key,
                     [&] { return List->contains(Key); });
            break;
          }
        }
      }));
    }
    return Ep;
  };
}

struct ScenarioStats {
  size_t Interleavings = 0;
  size_t CorrectDistinct = 0;
  size_t VblAccepted = 0;
  size_t LazyAccepted = 0;
  size_t LazyRejected = 0;
};

ScenarioStats runScenario(const Scenario &S) {
  ScenarioStats Stats;
  InterleavingExplorer Explorer(factoryFor<TracedLL>(S));

  // Distinct *exported* correct schedules (many interleavings export
  // the same schedule; replay once per schedule).
  std::vector<std::pair<std::string, Schedule>> Correct;
  Stats.Interleavings = Explorer.exploreAll(
      [&](const EpisodeResult &Result) {
        const Schedule Exported =
            exportLLSchedule(Result.Raw, Result.Meta.HeadNode);
        const CorrectnessResult Check = checkScheduleCorrect(
            Exported, Result.Meta.InitialChain, S.Universe);
        if (!Check.correct())
          return;
        const std::string Key = Exported.canonicalKey();
        for (const auto &[Seen, Sched] : Correct)
          if (Seen == Key)
            return;
        Correct.emplace_back(Key, Exported);
      },
      S.MaxEpisodes);
  Stats.CorrectDistinct = Correct.size();

  for (const auto &[Key, Target] : Correct) {
    const ReplayResult OnVbl =
        replaySchedule(factoryFor<TracedVbl>(S), Target);
    EXPECT_TRUE(OnVbl.Accepted)
        << S.Name << ": VBL rejected a correct schedule: " << OnVbl.Reason
        << "\nschedule:\n"
        << Target.toString() << "raw:\n"
        << OnVbl.RawTrace.toString();
    Stats.VblAccepted += OnVbl.Accepted;

    const ReplayResult OnLazy =
        replaySchedule(factoryFor<TracedLazy>(S), Target);
    ++(OnLazy.Accepted ? Stats.LazyAccepted : Stats.LazyRejected);
  }
  return Stats;
}

class OptimalityTest : public ::testing::TestWithParam<Scenario> {};

} // namespace

TEST_P(OptimalityTest, VblAcceptsEveryCorrectSchedule) {
  const Scenario &S = GetParam();
  const ScenarioStats Stats = runScenario(S);
  ASSERT_GT(Stats.Interleavings, 1u);
  ASSERT_GT(Stats.CorrectDistinct, 0u);
  EXPECT_EQ(Stats.VblAccepted, Stats.CorrectDistinct)
      << S.Name << ": VBL must accept all correct schedules (Theorem 3)";
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, OptimalityTest, ::testing::ValuesIn(scenarios()),
    [](const ::testing::TestParamInfo<Scenario> &Info) {
      return Info.param.Name;
    });

TEST(OptimalitySummary, LazyListIsSuboptimal) {
  // Across the Fig. 2 scenario the Lazy list must reject at least one
  // correct schedule (the one of Fig. 2) while accepting others — the
  // suboptimality half of §2.3.
  size_t Accepted = 0, Rejected = 0;
  for (const Scenario &S : scenarios()) {
    if (S.Name != "fig2_insert_present_vs_insert")
      continue;
    const ScenarioStats Stats = runScenario(S);
    Accepted += Stats.LazyAccepted;
    Rejected += Stats.LazyRejected;
  }
  EXPECT_GT(Rejected, 0u) << "Lazy accepted every correct schedule?!";
  EXPECT_GT(Accepted, 0u) << "Lazy rejected every correct schedule?!";
}
