//===- tests/sched/StateReconstructionTest.cpp - Replay-the-writes tests -===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Unit tests for the state reconstruction the paper's Theorem 3 proof
/// sketch relies on: "given a correct schedule, we can define the
/// contents of the list from the order of the schedule's write
/// operations ... we can reconstruct the state of the list by
/// iteratively traversing it, starting from the head."
///
//===----------------------------------------------------------------------===//

#include "sched/ScheduleChecker.h"

#include <gtest/gtest.h>

using namespace vbl;
using namespace vbl::sched;

namespace {

int Cells[8];
const void *head() { return &Cells[0]; }
const void *tail() { return &Cells[7]; }
const void *node(int I) { return &Cells[I]; }

uint64_t addr(const void *P) {
  return static_cast<uint64_t>(reinterpret_cast<uintptr_t>(P));
}

Event write(const void *Node, uint64_t Value) {
  Event E;
  E.Kind = EventKind::Write;
  E.Field = MemField::Next;
  E.Node = Node;
  E.Value = Value;
  return E;
}

Event cas(const void *Node, uint64_t Value) {
  Event E;
  E.Kind = EventKind::Cas;
  E.Field = MemField::Next;
  E.Node = Node;
  E.Value = Value;
  E.Value2 = 1;
  return E;
}

Event newNode(const void *Node, SetKey Key) {
  Event E;
  E.Kind = EventKind::NewNode;
  E.Node = Node;
  E.Value = static_cast<uint64_t>(Key);
  return E;
}

Event valRead(const void *Node, SetKey Key) {
  Event E;
  E.Kind = EventKind::Read;
  E.Field = MemField::Val;
  E.Node = Node;
  E.Value = static_cast<uint64_t>(Key);
  return E;
}

std::vector<std::pair<const void *, SetKey>> chain123() {
  return {{head(), MinSentinel},
          {node(1), 1},
          {node(2), 2},
          {node(3), 3},
          {tail(), MaxSentinel}};
}

} // namespace

TEST(StateReconstruction, NoWritesYieldsInitialState) {
  std::vector<SetKey> Keys;
  ASSERT_TRUE(reconstructFinalState(Schedule(), chain123(), Keys));
  EXPECT_EQ(Keys, (std::vector<SetKey>{1, 2, 3}));
}

TEST(StateReconstruction, UnlinkRemovesKey) {
  // write next(n1) = n3: node 2 bypassed.
  std::vector<SetKey> Keys;
  ASSERT_TRUE(reconstructFinalState(
      Schedule({write(node(1), addr(node(3)))}), chain123(), Keys));
  EXPECT_EQ(Keys, (std::vector<SetKey>{1, 3}));
}

TEST(StateReconstruction, LastWriteWins) {
  std::vector<SetKey> Keys;
  ASSERT_TRUE(reconstructFinalState(
      Schedule({write(node(1), addr(node(3))),
                write(node(1), addr(node(2)))}),
      chain123(), Keys));
  EXPECT_EQ(Keys, (std::vector<SetKey>{1, 2, 3}));
}

TEST(StateReconstruction, InsertedNodeAppears) {
  // New node 4 (key 7) whose traversal ended at tail; linked from n3.
  std::vector<SetKey> Keys;
  ASSERT_TRUE(reconstructFinalState(
      Schedule({valRead(tail(), MaxSentinel), newNode(node(4), 7),
                write(node(3), addr(node(4)))}),
      chain123(), Keys));
  EXPECT_EQ(Keys, (std::vector<SetKey>{1, 2, 3, 7}));
}

TEST(StateReconstruction, LostUpdateStillReconstructs) {
  // Two inserts both linking from n3: the second buries the first;
  // reconstruction reflects the surviving chain (the checker's
  // sigma-bar(v) phase is what flags the loss).
  Event New4 = newNode(node(4), 7);
  New4.Thread = 0;
  Event New5 = newNode(node(5), 8);
  New5.Thread = 1;
  Event Val4 = valRead(tail(), MaxSentinel);
  Val4.Thread = 0;
  Event Val5 = valRead(tail(), MaxSentinel);
  Val5.Thread = 1;
  Event W4 = write(node(3), addr(node(4)));
  W4.Thread = 0;
  Event W5 = write(node(3), addr(node(5)));
  W5.Thread = 1;
  std::vector<SetKey> Keys;
  ASSERT_TRUE(reconstructFinalState(
      Schedule({Val4, Val5, New4, New5, W4, W5}), chain123(), Keys));
  EXPECT_EQ(Keys, (std::vector<SetKey>{1, 2, 3, 8}))
      << "the second write must bury key 7";
}

TEST(StateReconstruction, DanglingChainReported) {
  // Point n1 at a node the schedule never defined.
  std::vector<SetKey> Keys;
  EXPECT_FALSE(reconstructFinalState(
      Schedule({write(node(1), addr(node(6)))}), chain123(), Keys));
}

TEST(StateReconstruction, CycleReported) {
  std::vector<SetKey> Keys;
  EXPECT_FALSE(reconstructFinalState(
      Schedule({write(node(2), addr(node(1)))}), chain123(), Keys));
}

TEST(StateReconstructionMarked, MarkedNodeExcludedButTraversed) {
  // Mark node 2 (logical deletion) without unlinking: reachable but
  // not a member.
  std::vector<SetKey> Keys;
  ASSERT_TRUE(reconstructFinalStateMarked(
      Schedule({cas(node(2), addr(node(3)) | 1)}), chain123(), Keys));
  EXPECT_EQ(Keys, (std::vector<SetKey>{1, 3}));
}

TEST(StateReconstructionMarked, UnlinkAfterMarkAlsoWorks) {
  std::vector<SetKey> Keys;
  ASSERT_TRUE(reconstructFinalStateMarked(
      Schedule({cas(node(2), addr(node(3)) | 1),
                cas(node(1), addr(node(3)))}),
      chain123(), Keys));
  EXPECT_EQ(Keys, (std::vector<SetKey>{1, 3}));
}

TEST(StateReconstructionMarked, PlainScheduleBehavesLikeUnmarked) {
  std::vector<SetKey> Plain, Marked;
  const Schedule S({write(node(1), addr(node(3)))});
  ASSERT_TRUE(reconstructFinalState(S, chain123(), Plain));
  ASSERT_TRUE(reconstructFinalStateMarked(S, chain123(), Marked));
  EXPECT_EQ(Plain, Marked);
}
