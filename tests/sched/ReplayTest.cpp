//===- tests/sched/ReplayTest.cpp - Schedule-driven replay semantics -----===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Direct tests of replaySchedule beyond the Fig. 2/3 demonstrations:
/// the replay of a schedule against the implementation that generated
/// it must succeed (self-replay), replay must reject impossible
/// schedules (wrong results), and the explorer's forced-prefix replay
/// must be deterministic.
///
//===----------------------------------------------------------------------===//

#include "core/VblList.h"
#include "lists/SequentialList.h"
#include "reclaim/LeakyDomain.h"
#include "sched/InterleavingExplorer.h"
#include "sched/ScheduleExport.h"

#include <gtest/gtest.h>

using namespace vbl;
using namespace vbl::sched;

namespace {

using TracedVbl = VblList<reclaim::LeakyDomain, TracedPolicy>;
using TracedLL = SequentialList<TracedPolicy>;

template <class ListT> EpisodeFactory twoInsertFactory() {
  return []() -> Episode {
    auto List = std::make_shared<ListT>();
    List->insert(5);
    Episode Ep;
    Ep.HeadNode = List->headNode();
    Ep.InitialChain = List->nodeChain();
    Ep.Holder = List;
    Ep.Bodies = {
        [List] {
          tracedOp(SetOp::Insert, 3, [&] { return List->insert(3); });
        },
        [List] {
          tracedOp(SetOp::Insert, 7, [&] { return List->insert(7); });
        }};
    return Ep;
  };
}

} // namespace

TEST(Replay, SelfReplayAlwaysAccepts) {
  // Every schedule VBL itself exports must replay-accept on VBL: the
  // execution that produced it is the witness.
  InterleavingExplorer Explorer(twoInsertFactory<TracedVbl>());
  size_t Checked = 0;
  Explorer.exploreAll(
      [&](const EpisodeResult &Result) {
        if (++Checked > 40)
          return; // Keep replays cheap; exploration continues.
        const Schedule Exported =
            exportLLSchedule(Result.Raw, Result.Meta.HeadNode);
        const ReplayResult Replay =
            replaySchedule(twoInsertFactory<TracedVbl>(), Exported);
        EXPECT_TRUE(Replay.Accepted)
            << Replay.Reason << "\n"
            << Exported.toString();
      },
      2000);
  EXPECT_GT(Checked, 10u);
}

TEST(Replay, RejectsImpossibleResults) {
  // Take a real LL schedule and flip an operation's result: no
  // execution of a correct implementation can export it.
  InterleavingExplorer Explorer(twoInsertFactory<TracedLL>());
  EpisodeResult Result = Explorer.run({});
  Schedule Exported = exportLLSchedule(Result.Raw, Result.Meta.HeadNode);
  for (Event &E : Exported.events())
    if (E.Kind == EventKind::OpEnd)
      E.Value ^= 1; // Lie about every result.
  const ReplayResult Replay =
      replaySchedule(twoInsertFactory<TracedVbl>(), Exported);
  EXPECT_FALSE(Replay.Accepted);
}

TEST(Replay, RejectsForeignWalkShape) {
  // A schedule whose traversal skips the existing node 5 (reads a next
  // pointer that was never there) cannot be exported by any execution.
  InterleavingExplorer Explorer(twoInsertFactory<TracedLL>());
  EpisodeResult Result = Explorer.run({});
  Schedule Exported = exportLLSchedule(Result.Raw, Result.Meta.HeadNode);
  // Remove one mid-traversal read: the replayed prefix diverges.
  auto &Events = Exported.events();
  for (size_t I = 0; I != Events.size(); ++I) {
    if (Events[I].Kind == EventKind::Read &&
        Events[I].Field == MemField::Val) {
      Events.erase(Events.begin() + static_cast<long>(I));
      break;
    }
  }
  const ReplayResult Replay =
      replaySchedule(twoInsertFactory<TracedVbl>(), Exported);
  EXPECT_FALSE(Replay.Accepted);
}

TEST(Replay, ExplorerForcedPrefixIsDeterministic) {
  InterleavingExplorer Explorer(twoInsertFactory<TracedLL>());
  const std::vector<unsigned> Forced = {0, 1, 0, 1, 1, 0};
  const EpisodeResult A = Explorer.run(Forced);
  const EpisodeResult B = Explorer.run(Forced);
  EXPECT_EQ(A.Choices, B.Choices);
  EXPECT_EQ(A.Raw.canonicalKey(), B.Raw.canonicalKey());
}

TEST(Replay, ExploreAllVisitsLexicographicallyFirstRunFirst) {
  InterleavingExplorer Explorer(twoInsertFactory<TracedLL>());
  std::vector<std::vector<unsigned>> Seen;
  Explorer.exploreAll(
      [&](const EpisodeResult &Result) { Seen.push_back(Result.Choices); },
      5);
  ASSERT_GE(Seen.size(), 2u);
  // First episode is all-thread-0-first (greedy lowest runnable).
  for (size_t I = 0; I + 1 < Seen[0].size(); ++I)
    EXPECT_LE(Seen[0][I], Seen[0][I + 1]);
  EXPECT_NE(Seen[0], Seen[1]);
}
