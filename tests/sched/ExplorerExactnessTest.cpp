//===- tests/sched/ExplorerExactnessTest.cpp - Exhaustiveness check ------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// The interleaving explorer claims exhaustive enumeration. For two
/// independent threads with fixed step counts n and m the interleaving
/// count is exactly C(n+m, n); this test measures each thread's step
/// count by running it alone, then checks the explorer enumerates
/// precisely that many distinct executions.
///
//===----------------------------------------------------------------------===//

#include "lists/SequentialList.h"
#include "sched/InterleavingExplorer.h"

#include <gtest/gtest.h>

#include <set>

using namespace vbl;
using namespace vbl::sched;

namespace {

using TracedLL = SequentialList<TracedPolicy>;

EpisodeFactory containsFactory(SetKey Key0, SetKey Key1) {
  return [Key0, Key1]() -> Episode {
    auto List = std::make_shared<TracedLL>();
    List->insert(10);
    List->insert(20);
    Episode Ep;
    Ep.HeadNode = List->headNode();
    Ep.InitialChain = List->nodeChain();
    Ep.Holder = List;
    Ep.Bodies = {
        [List, Key0] {
          tracedOp(SetOp::Contains, Key0,
                   [&] { return List->contains(Key0); });
        },
        [List, Key1] {
          tracedOp(SetOp::Contains, Key1,
                   [&] { return List->contains(Key1); });
        }};
    return Ep;
  };
}

/// Steps thread \p Thread of a fresh episode alone to completion and
/// returns how many grants it took.
size_t soloStepCount(const EpisodeFactory &Factory, unsigned Thread) {
  Episode Ep = Factory();
  StepScheduler Sched(Ep.Bodies);
  size_t Steps = 0;
  while (!Sched.finished(Thread)) {
    Sched.step(Thread);
    ++Steps;
  }
  // Drain the other thread so the destructor is happy.
  EXPECT_TRUE(Sched.drain());
  return Steps;
}

double binomial(size_t N, size_t K) {
  double Result = 1.0;
  for (size_t I = 0; I != K; ++I)
    Result = Result * static_cast<double>(N - I) /
             static_cast<double>(I + 1);
  return Result;
}

} // namespace

TEST(ExplorerExactness, CountMatchesBinomial) {
  // Contains ops never block and never interact: pure interleaving
  // combinatorics.
  const EpisodeFactory Factory = containsFactory(10, 20);
  const size_t N0 = soloStepCount(Factory, 0);
  const size_t N1 = soloStepCount(Factory, 1);
  ASSERT_GT(N0, 1u);
  ASSERT_GT(N1, 1u);
  const auto Expected =
      static_cast<size_t>(binomial(N0 + N1, N0) + 0.5);

  InterleavingExplorer Explorer(Factory);
  std::set<std::vector<unsigned>> DistinctChoiceSeqs;
  const size_t Episodes = Explorer.exploreAll(
      [&](const EpisodeResult &Result) {
        DistinctChoiceSeqs.insert(Result.Choices);
      },
      Expected * 2 + 100);
  EXPECT_EQ(Episodes, Expected)
      << "explorer must enumerate exactly C(" << N0 + N1 << "," << N0
      << ") interleavings";
  EXPECT_EQ(DistinctChoiceSeqs.size(), Episodes)
      << "no interleaving may be visited twice";
}

TEST(ExplorerExactness, ThreeThreadCountMatchesMultinomial) {
  auto Factory = []() -> Episode {
    auto List = std::make_shared<TracedLL>();
    List->insert(10);
    Episode Ep;
    Ep.HeadNode = List->headNode();
    Ep.InitialChain = List->nodeChain();
    Ep.Holder = List;
    for (int T = 0; T != 3; ++T)
      Ep.Bodies.push_back([List] {
        tracedOp(SetOp::Contains, 10,
                 [&] { return List->contains(10); });
      });
    return Ep;
  };
  std::vector<size_t> Steps(3);
  for (unsigned T = 0; T != 3; ++T)
    Steps[T] = soloStepCount(Factory, T);
  // Multinomial (n0+n1+n2)! / (n0! n1! n2!) via iterated binomials.
  const double Expected = binomial(Steps[0] + Steps[1], Steps[0]) *
                          binomial(Steps[0] + Steps[1] + Steps[2],
                                   Steps[2]);
  InterleavingExplorer Explorer(Factory);
  const size_t Episodes = Explorer.exploreAll(
      [](const EpisodeResult &) {},
      static_cast<size_t>(Expected) * 2 + 100);
  EXPECT_EQ(Episodes, static_cast<size_t>(Expected + 0.5));
}

TEST(ExplorerExactness, SingleThreadHasOneInterleaving) {
  auto Factory = []() -> Episode {
    auto List = std::make_shared<TracedLL>();
    List->insert(1);
    Episode Ep;
    Ep.HeadNode = List->headNode();
    Ep.InitialChain = List->nodeChain();
    Ep.Holder = List;
    Ep.Bodies = {[List] {
      tracedOp(SetOp::Contains, 1, [&] { return List->contains(1); });
    }};
    return Ep;
  };
  InterleavingExplorer Explorer(Factory);
  const size_t Episodes = Explorer.exploreAll(
      [](const EpisodeResult &) {}, 100);
  EXPECT_EQ(Episodes, 1u);
}
