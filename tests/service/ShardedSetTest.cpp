//===- tests/service/ShardedSetTest.cpp - Front-end correctness ----------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Correctness of the sharded serving front-end across its access
/// disciplines (direct / batched / flat-combined / adaptive) and a
/// spread of backends (flat VBL over VBR, the chunked list, and the
/// split-ordered hash over VBL+VBR):
///
///  - sequential differential: session-routed ops vs std::set, with
///    results checked in completion order (batch flushes included);
///  - same-key FIFO inside a batch: the sorted apply path must keep
///    submission order for equal keys (stable sort);
///  - concurrent per-key linearizability: recorded histories where a
///    batched op's interval is widened to [enqueue, flush-return] —
///    its linearization point provably lies inside — checked by the
///    lin engine;
///  - the registry suggestion path for unknown backend names.
///
//===----------------------------------------------------------------------===//

#include "service/ShardedSet.h"

#include "lin/LinChecker.h"
#include "support/Barrier.h"
#include "support/Random.h"
#include "support/Timing.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace vbl;
using namespace vbl::service;

namespace {

const char *const Backends[] = {"vbl-vbr", "vbl-chunk", "so-hash-vbl-vbr"};

ShardedSet::Options options(const std::string &Backend, unsigned Shards,
                            unsigned Batch, CombineMode Mode) {
  ShardedSet::Options Opts;
  Opts.Backend = Backend;
  Opts.Shards = Shards;
  Opts.BatchSize = Batch;
  Opts.Combine = Mode;
  return Opts;
}

std::unique_ptr<ShardedSet> mustCreate(const ShardedSet::Options &Opts) {
  std::string Error;
  auto Front = ShardedSet::create(Opts, &Error);
  EXPECT_NE(Front, nullptr) << Error;
  return Front;
}

//===--------------------------------------------------------------===//
// Sequential differential vs std::set
//===--------------------------------------------------------------===//

// Single session, random ops through enqueue/flush. The front-end
// serializes everything (one thread), so replaying completed ops
// against std::set in completion order must reproduce every Result
// bit-exactly; snapshot() must equal the model at the end.
void sequentialDifferential(const std::string &Backend, unsigned Batch,
                            CombineMode Mode) {
  auto Front = mustCreate(options(Backend, 4, Batch, Mode));
  ShardedSet::Session Session = Front->openSession();
  std::set<SetKey> Model;
  Xoshiro256 Rng(2024);
  for (int I = 0; I != 6000; ++I) {
    const auto Key = static_cast<SetKey>(Rng.nextBounded(64));
    const unsigned Kind = static_cast<unsigned>(Rng.nextBounded(3));
    const SetOp Op = Kind == 0   ? SetOp::Insert
                     : Kind == 1 ? SetOp::Remove
                                 : SetOp::Contains;
    Session.enqueue(Op, Key);
    if (Rng.nextBounded(16) == 0)
      Session.flush();
    for (const BatchOp &Done : Session.takeCompleted()) {
      bool Expected = false;
      switch (Done.Op) {
      case SetOp::Insert:
        Expected = Model.insert(Done.Key).second;
        break;
      case SetOp::Remove:
        Expected = Model.erase(Done.Key) != 0;
        break;
      case SetOp::Contains:
        Expected = Model.count(Done.Key) != 0;
        break;
      }
      ASSERT_EQ(Done.Result, Expected)
          << Backend << " op " << I << " key " << Done.Key;
    }
  }
  Session.flush();
  for (const BatchOp &Done : Session.takeCompleted()) {
    bool Expected = false;
    switch (Done.Op) {
    case SetOp::Insert:
      Expected = Model.insert(Done.Key).second;
      break;
    case SetOp::Remove:
      Expected = Model.erase(Done.Key) != 0;
      break;
    case SetOp::Contains:
      Expected = Model.count(Done.Key) != 0;
      break;
    }
    ASSERT_EQ(Done.Result, Expected);
  }
  EXPECT_EQ(Session.pendingOps(), 0u);
  EXPECT_TRUE(Front->checkInvariants()) << Backend;
  EXPECT_EQ(Front->snapshot(),
            std::vector<SetKey>(Model.begin(), Model.end()))
      << Backend;
}

TEST(ShardedSetTest, SequentialDifferentialBatched) {
  for (const char *Backend : Backends)
    sequentialDifferential(Backend, 8, CombineMode::Off);
}

TEST(ShardedSetTest, SequentialDifferentialPerOp) {
  for (const char *Backend : Backends)
    sequentialDifferential(Backend, 1, CombineMode::Off);
}

TEST(ShardedSetTest, SequentialDifferentialCombining) {
  for (const char *Backend : Backends)
    sequentialDifferential(Backend, 8, CombineMode::On);
}

TEST(ShardedSetTest, SequentialDifferentialAdaptive) {
  for (const char *Backend : Backends)
    sequentialDifferential(Backend, 8, CombineMode::Adaptive);
}

// Same-key ops inside one batch must apply in submission order: the
// shard adapter's sort is stable, so insert/remove/insert/contains on
// one key resolves like the sequential program.
TEST(ShardedSetTest, SameKeyFifoWithinBatch) {
  for (const char *Backend : Backends) {
    auto Front = mustCreate(
        options(Backend, 1, 8, CombineMode::Off)); // 1 shard: one batch
    ShardedSet::Session Session = Front->openSession();
    const SetKey Key = 7;
    Session.enqueue(SetOp::Insert, Key);
    Session.enqueue(SetOp::Remove, Key);
    Session.enqueue(SetOp::Insert, Key);
    Session.enqueue(SetOp::Contains, Key);
    // Interleave a second key to prove sorting doesn't reorder the
    // same-key subsequence.
    Session.enqueue(SetOp::Insert, 3);
    Session.flush();
    const std::vector<BatchOp> Done = Session.takeCompleted();
    ASSERT_EQ(Done.size(), 5u) << Backend;
    EXPECT_TRUE(Done[0].Result) << Backend;  // insert into empty
    EXPECT_TRUE(Done[1].Result) << Backend;  // remove it
    EXPECT_TRUE(Done[2].Result) << Backend;  // insert again
    EXPECT_TRUE(Done[3].Result) << Backend;  // present
    EXPECT_TRUE(Done[4].Result) << Backend;
    EXPECT_EQ(Front->snapshot(), (std::vector<SetKey>{3, Key}));
  }
}

// The ConcurrentSet face routes per-op; the routing invariant in
// checkInvariants verifies every stored key hashes to its shard.
TEST(ShardedSetTest, DirectInterfaceAndRouting) {
  auto Front = mustCreate(options("vbl", 8, 1, CombineMode::Off));
  std::set<SetKey> Model;
  Xoshiro256 Rng(5);
  for (int I = 0; I != 2000; ++I) {
    const auto Key = static_cast<SetKey>(Rng.nextBounded(128));
    if (Rng.nextBounded(2)) {
      ASSERT_EQ(Front->insert(Key), Model.insert(Key).second);
    } else {
      ASSERT_EQ(Front->remove(Key), Model.erase(Key) != 0);
    }
  }
  EXPECT_TRUE(Front->checkInvariants());
  EXPECT_EQ(Front->snapshot(),
            std::vector<SetKey>(Model.begin(), Model.end()));
}

//===--------------------------------------------------------------===//
// Concurrent per-key linearizability
//===--------------------------------------------------------------===//

// Batched ops: interval = [enqueue, flush-return]. The op's actual
// linearization (inside the backend during the flush) lies within, so
// if the widened history linearizes per key, so does the execution.
void concurrentLincheck(const std::string &Backend, unsigned Batch,
                        CombineMode Mode) {
  auto Front = mustCreate(options(Backend, 2, Batch, Mode));
  std::vector<SetKey> Initial;
  for (SetKey Key = 0; Key < 8; Key += 2) {
    Front->insert(Key);
    Initial.push_back(Key);
  }
  constexpr unsigned Threads = 4;
  lin::HistoryRecorder Recorder(Threads);
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&, T] {
      auto &Log = Recorder.threadLog(T);
      ShardedSet::Session Session = Front->openSession();
      Xoshiro256 Rng(T + 91);
      Barrier.arriveAndWait();
      const auto Drain = [&] {
        const uint64_t Response = nowNanos();
        for (const BatchOp &Done : Session.takeCompleted())
          Log.record(Done.Op, Done.Key, Done.Result, Done.Tag,
                     Response);
      };
      for (int I = 0; I != 3000; ++I) {
        const auto Key = static_cast<SetKey>(Rng.nextBounded(8));
        const unsigned Kind = static_cast<unsigned>(Rng.nextBounded(3));
        const SetOp Op = Kind == 0   ? SetOp::Insert
                         : Kind == 1 ? SetOp::Remove
                                     : SetOp::Contains;
        Session.enqueue(Op, Key, nowNanos());
        Drain();
      }
      Session.flush();
      Drain();
    });
  for (auto &Worker : Workers)
    Worker.join();
  EXPECT_TRUE(Front->checkInvariants()) << Backend;
  const lin::LinResult Result =
      lin::checkSetHistory(Recorder.merged(), Initial);
  EXPECT_TRUE(Result.Ok) << Backend << ": " << Result.Message;
}

TEST(ShardedSetTest, LinearizableBatched) {
  for (const char *Backend : Backends)
    concurrentLincheck(Backend, 4, CombineMode::Off);
}

TEST(ShardedSetTest, LinearizableCombining) {
  for (const char *Backend : Backends)
    concurrentLincheck(Backend, 4, CombineMode::On);
}

TEST(ShardedSetTest, LinearizableAdaptive) {
  for (const char *Backend : Backends)
    concurrentLincheck(Backend, 1, CombineMode::Adaptive);
}

// Concurrent differential on final state: updates only, disjoint key
// slices per thread, so the final snapshot is deterministic.
TEST(ShardedSetTest, ConcurrentDisjointSlices) {
  auto Front = mustCreate(options("vbl", 4, 8, CombineMode::On));
  constexpr unsigned Threads = 4;
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&, T] {
      ShardedSet::Session Session = Front->openSession();
      Barrier.arriveAndWait();
      const SetKey Base = static_cast<SetKey>(T) * 100;
      for (SetKey Key = Base; Key != Base + 50; ++Key)
        Session.enqueue(SetOp::Insert, Key);
      for (SetKey Key = Base; Key != Base + 50; Key += 2)
        Session.enqueue(SetOp::Remove, Key);
      Session.flush();
    });
  for (auto &Worker : Workers)
    Worker.join();
  EXPECT_TRUE(Front->checkInvariants());
  std::vector<SetKey> Expected;
  for (unsigned T = 0; T != Threads; ++T)
    for (SetKey Key = T * 100 + 1; Key < T * 100 + 50; Key += 2)
      Expected.push_back(Key);
  EXPECT_EQ(Front->snapshot(), Expected);
}

//===--------------------------------------------------------------===//
// Registry descriptions and the suggestion path
//===--------------------------------------------------------------===//

TEST(ShardedSetTest, UnknownBackendSuggestsClosestNames) {
  ShardedSet::Options Opts;
  Opts.Backend = "vlb"; // transposition of "vbl"
  std::string Error;
  EXPECT_EQ(ShardedSet::create(Opts, &Error), nullptr);
  EXPECT_NE(Error.find("unknown backend 'vlb'"), std::string::npos)
      << Error;
  EXPECT_NE(Error.find("did you mean"), std::string::npos) << Error;
  EXPECT_NE(Error.find("vbl"), std::string::npos) << Error;
}

TEST(ShardedSetTest, RegistryDescriptionsAreComplete) {
  const std::vector<SetDescription> All = registeredSetDescriptions();
  EXPECT_GE(All.size(), 27u);
  for (const SetDescription &D : All) {
    EXPECT_FALSE(D.Describe.empty()) << D.Name;
    // Every described name must resolve through the factory.
    EXPECT_NE(makeSet(D.Name), nullptr) << D.Name;
  }
  EXPECT_FALSE(setDescription("vbl").empty());
  EXPECT_TRUE(setDescription("no-such-backend").empty());
  const std::vector<std::string> Close = suggestSetNames("vbl-chunck");
  ASSERT_FALSE(Close.empty());
  EXPECT_EQ(Close.front(), "vbl-chunk");
}

TEST(ShardedSetTest, CombineModeParsing) {
  CombineMode Mode = CombineMode::Off;
  EXPECT_TRUE(parseCombineMode("adaptive", Mode));
  EXPECT_EQ(static_cast<int>(Mode),
            static_cast<int>(CombineMode::Adaptive));
  EXPECT_FALSE(parseCombineMode("sometimes", Mode));
  EXPECT_STREQ(combineModeName(CombineMode::On), "on");
}

} // namespace
