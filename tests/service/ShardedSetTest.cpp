//===- tests/service/ShardedSetTest.cpp - Front-end correctness ----------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Correctness of the sharded serving front-end across its access
/// disciplines (direct / batched / flat-combined / adaptive) and a
/// spread of backends (flat VBL over VBR, the chunked list, and the
/// split-ordered hash over VBL+VBR):
///
///  - sequential differential: session-routed ops vs std::set, with
///    results checked in completion order (batch flushes included);
///  - same-key FIFO inside a batch: the sorted apply path must keep
///    submission order for equal keys (stable sort);
///  - concurrent per-key linearizability: recorded histories where a
///    batched op's interval is widened to [enqueue, flush-return] —
///    its linearization point provably lies inside — checked by the
///    lin engine;
///  - the registry suggestion path for unknown backend names.
///
//===----------------------------------------------------------------------===//

#include "service/ShardedSet.h"

#include "lin/LinChecker.h"
#include "support/Barrier.h"
#include "support/Random.h"
#include "support/Timing.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace vbl;
using namespace vbl::service;

namespace {

const char *const Backends[] = {"vbl-vbr", "vbl-chunk", "so-hash-vbl-vbr"};

ShardedSet::Options options(const std::string &Backend, unsigned Shards,
                            unsigned Batch, CombineMode Mode) {
  ShardedSet::Options Opts;
  Opts.Backend = Backend;
  Opts.Shards = Shards;
  Opts.BatchSize = Batch;
  Opts.Combine = Mode;
  return Opts;
}

std::unique_ptr<ShardedSet> mustCreate(const ShardedSet::Options &Opts) {
  std::string Error;
  auto Front = ShardedSet::create(Opts, &Error);
  EXPECT_NE(Front, nullptr) << Error;
  return Front;
}

//===--------------------------------------------------------------===//
// Sequential differential vs std::set
//===--------------------------------------------------------------===//

// Single session, random ops through enqueue/flush. The front-end
// serializes everything (one thread), so replaying completed ops
// against std::set in completion order must reproduce every Result
// bit-exactly; snapshot() must equal the model at the end.
void sequentialDifferential(const std::string &Backend, unsigned Batch,
                            CombineMode Mode) {
  auto Front = mustCreate(options(Backend, 4, Batch, Mode));
  ShardedSet::Session Session = Front->openSession();
  std::set<SetKey> Model;
  Xoshiro256 Rng(2024);
  for (int I = 0; I != 6000; ++I) {
    const auto Key = static_cast<SetKey>(Rng.nextBounded(64));
    const unsigned Kind = static_cast<unsigned>(Rng.nextBounded(3));
    const SetOp Op = Kind == 0   ? SetOp::Insert
                     : Kind == 1 ? SetOp::Remove
                                 : SetOp::Contains;
    Session.enqueue(Op, Key);
    if (Rng.nextBounded(16) == 0)
      Session.flush();
    for (const BatchOp &Done : Session.takeCompleted()) {
      bool Expected = false;
      switch (Done.Op) {
      case SetOp::Insert:
        Expected = Model.insert(Done.Key).second;
        break;
      case SetOp::Remove:
        Expected = Model.erase(Done.Key) != 0;
        break;
      case SetOp::Contains:
        Expected = Model.count(Done.Key) != 0;
        break;
      case SetOp::RangeQuery:
        ADD_FAILURE() << "scan pieces must not reach takeCompleted()";
        continue;
      }
      ASSERT_EQ(Done.Result, Expected)
          << Backend << " op " << I << " key " << Done.Key;
    }
  }
  Session.flush();
  for (const BatchOp &Done : Session.takeCompleted()) {
    bool Expected = false;
    switch (Done.Op) {
    case SetOp::Insert:
      Expected = Model.insert(Done.Key).second;
      break;
    case SetOp::Remove:
      Expected = Model.erase(Done.Key) != 0;
      break;
    case SetOp::Contains:
      Expected = Model.count(Done.Key) != 0;
      break;
    case SetOp::RangeQuery:
      ADD_FAILURE() << "scan pieces must not reach takeCompleted()";
      continue;
    }
    ASSERT_EQ(Done.Result, Expected);
  }
  EXPECT_EQ(Session.pendingOps(), 0u);
  EXPECT_TRUE(Front->checkInvariants()) << Backend;
  EXPECT_EQ(Front->snapshot(),
            std::vector<SetKey>(Model.begin(), Model.end()))
      << Backend;
}

TEST(ShardedSetTest, SequentialDifferentialBatched) {
  for (const char *Backend : Backends)
    sequentialDifferential(Backend, 8, CombineMode::Off);
}

TEST(ShardedSetTest, SequentialDifferentialPerOp) {
  for (const char *Backend : Backends)
    sequentialDifferential(Backend, 1, CombineMode::Off);
}

TEST(ShardedSetTest, SequentialDifferentialCombining) {
  for (const char *Backend : Backends)
    sequentialDifferential(Backend, 8, CombineMode::On);
}

TEST(ShardedSetTest, SequentialDifferentialAdaptive) {
  for (const char *Backend : Backends)
    sequentialDifferential(Backend, 8, CombineMode::Adaptive);
}

// Same-key ops inside one batch must apply in submission order: the
// shard adapter's sort is stable, so insert/remove/insert/contains on
// one key resolves like the sequential program.
TEST(ShardedSetTest, SameKeyFifoWithinBatch) {
  for (const char *Backend : Backends) {
    auto Front = mustCreate(
        options(Backend, 1, 8, CombineMode::Off)); // 1 shard: one batch
    ShardedSet::Session Session = Front->openSession();
    const SetKey Key = 7;
    Session.enqueue(SetOp::Insert, Key);
    Session.enqueue(SetOp::Remove, Key);
    Session.enqueue(SetOp::Insert, Key);
    Session.enqueue(SetOp::Contains, Key);
    // Interleave a second key to prove sorting doesn't reorder the
    // same-key subsequence.
    Session.enqueue(SetOp::Insert, 3);
    Session.flush();
    const std::vector<BatchOp> Done = Session.takeCompleted();
    ASSERT_EQ(Done.size(), 5u) << Backend;
    EXPECT_TRUE(Done[0].Result) << Backend;  // insert into empty
    EXPECT_TRUE(Done[1].Result) << Backend;  // remove it
    EXPECT_TRUE(Done[2].Result) << Backend;  // insert again
    EXPECT_TRUE(Done[3].Result) << Backend;  // present
    EXPECT_TRUE(Done[4].Result) << Backend;
    EXPECT_EQ(Front->snapshot(), (std::vector<SetKey>{3, Key}));
  }
}

// The ConcurrentSet face routes per-op; the routing invariant in
// checkInvariants verifies every stored key hashes to its shard.
TEST(ShardedSetTest, DirectInterfaceAndRouting) {
  auto Front = mustCreate(options("vbl", 8, 1, CombineMode::Off));
  std::set<SetKey> Model;
  Xoshiro256 Rng(5);
  for (int I = 0; I != 2000; ++I) {
    const auto Key = static_cast<SetKey>(Rng.nextBounded(128));
    if (Rng.nextBounded(2)) {
      ASSERT_EQ(Front->insert(Key), Model.insert(Key).second);
    } else {
      ASSERT_EQ(Front->remove(Key), Model.erase(Key) != 0);
    }
  }
  EXPECT_TRUE(Front->checkInvariants());
  EXPECT_EQ(Front->snapshot(),
            std::vector<SetKey>(Model.begin(), Model.end()));
}

//===--------------------------------------------------------------===//
// Concurrent per-key linearizability
//===--------------------------------------------------------------===//

// Batched ops: interval = [enqueue, flush-return]. The op's actual
// linearization (inside the backend during the flush) lies within, so
// if the widened history linearizes per key, so does the execution.
void concurrentLincheck(const std::string &Backend, unsigned Batch,
                        CombineMode Mode) {
  auto Front = mustCreate(options(Backend, 2, Batch, Mode));
  std::vector<SetKey> Initial;
  for (SetKey Key = 0; Key < 8; Key += 2) {
    Front->insert(Key);
    Initial.push_back(Key);
  }
  constexpr unsigned Threads = 4;
  lin::HistoryRecorder Recorder(Threads);
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&, T] {
      auto &Log = Recorder.threadLog(T);
      ShardedSet::Session Session = Front->openSession();
      Xoshiro256 Rng(T + 91);
      Barrier.arriveAndWait();
      const auto Drain = [&] {
        const uint64_t Response = nowNanos();
        for (const BatchOp &Done : Session.takeCompleted())
          Log.record(Done.Op, Done.Key, Done.Result, Done.Tag,
                     Response);
      };
      for (int I = 0; I != 3000; ++I) {
        const auto Key = static_cast<SetKey>(Rng.nextBounded(8));
        const unsigned Kind = static_cast<unsigned>(Rng.nextBounded(3));
        const SetOp Op = Kind == 0   ? SetOp::Insert
                         : Kind == 1 ? SetOp::Remove
                                     : SetOp::Contains;
        Session.enqueue(Op, Key, nowNanos());
        Drain();
      }
      Session.flush();
      Drain();
    });
  for (auto &Worker : Workers)
    Worker.join();
  EXPECT_TRUE(Front->checkInvariants()) << Backend;
  const lin::LinResult Result =
      lin::checkSetHistory(Recorder.merged(), Initial);
  EXPECT_TRUE(Result.Ok) << Backend << ": " << Result.Message;
}

TEST(ShardedSetTest, LinearizableBatched) {
  for (const char *Backend : Backends)
    concurrentLincheck(Backend, 4, CombineMode::Off);
}

TEST(ShardedSetTest, LinearizableCombining) {
  for (const char *Backend : Backends)
    concurrentLincheck(Backend, 4, CombineMode::On);
}

TEST(ShardedSetTest, LinearizableAdaptive) {
  for (const char *Backend : Backends)
    concurrentLincheck(Backend, 1, CombineMode::Adaptive);
}

// Concurrent differential on final state: updates only, disjoint key
// slices per thread, so the final snapshot is deterministic.
TEST(ShardedSetTest, ConcurrentDisjointSlices) {
  auto Front = mustCreate(options("vbl", 4, 8, CombineMode::On));
  constexpr unsigned Threads = 4;
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&, T] {
      ShardedSet::Session Session = Front->openSession();
      Barrier.arriveAndWait();
      const SetKey Base = static_cast<SetKey>(T) * 100;
      for (SetKey Key = Base; Key != Base + 50; ++Key)
        Session.enqueue(SetOp::Insert, Key);
      for (SetKey Key = Base; Key != Base + 50; Key += 2)
        Session.enqueue(SetOp::Remove, Key);
      Session.flush();
    });
  for (auto &Worker : Workers)
    Worker.join();
  EXPECT_TRUE(Front->checkInvariants());
  std::vector<SetKey> Expected;
  for (unsigned T = 0; T != Threads; ++T)
    for (SetKey Key = T * 100 + 1; Key < T * 100 + 50; Key += 2)
      Expected.push_back(Key);
  EXPECT_EQ(Front->snapshot(), Expected);
}

//===--------------------------------------------------------------===//
// Registry descriptions and the suggestion path
//===--------------------------------------------------------------===//

TEST(ShardedSetTest, UnknownBackendSuggestsClosestNames) {
  ShardedSet::Options Opts;
  Opts.Backend = "vlb"; // transposition of "vbl"
  std::string Error;
  EXPECT_EQ(ShardedSet::create(Opts, &Error), nullptr);
  EXPECT_NE(Error.find("unknown backend 'vlb'"), std::string::npos)
      << Error;
  EXPECT_NE(Error.find("did you mean"), std::string::npos) << Error;
  EXPECT_NE(Error.find("vbl"), std::string::npos) << Error;
}

TEST(ShardedSetTest, RegistryDescriptionsAreComplete) {
  const std::vector<SetDescription> All = registeredSetDescriptions();
  EXPECT_GE(All.size(), 27u);
  for (const SetDescription &D : All) {
    EXPECT_FALSE(D.Describe.empty()) << D.Name;
    // Every described name must resolve through the factory.
    EXPECT_NE(makeSet(D.Name), nullptr) << D.Name;
  }
  EXPECT_FALSE(setDescription("vbl").empty());
  EXPECT_TRUE(setDescription("no-such-backend").empty());
  const std::vector<std::string> Close = suggestSetNames("vbl-chunck");
  ASSERT_FALSE(Close.empty());
  EXPECT_EQ(Close.front(), "vbl-chunk");
}

//===--------------------------------------------------------------===//
// Range scans through the front-end
//===--------------------------------------------------------------===//

// Direct rangeQuery/snapshot must merge the hash-partitioned shards
// into one ascending window, matching a std::set model exactly.
TEST(ShardedSetTest, RangeQueryMergesShards) {
  for (const char *Backend : Backends) {
    auto Front = mustCreate(options(Backend, 4, 1, CombineMode::Off));
    std::set<SetKey> Model;
    Xoshiro256 Rng(7);
    for (int I = 0; I != 400; ++I) {
      const auto Key = static_cast<SetKey>(Rng.nextBounded(256));
      Front->insert(Key);
      Model.insert(Key);
    }
    std::vector<SetKey> Got;
    const size_t Returned = Front->rangeQuery(50, 199, Got);
    EXPECT_EQ(Returned, Got.size());
    EXPECT_EQ(Got, std::vector<SetKey>(Model.lower_bound(50),
                                       Model.upper_bound(199)))
        << Backend;
    std::vector<SetKey> All;
    Front->snapshot(All);
    EXPECT_EQ(All, std::vector<SetKey>(Model.begin(), Model.end()))
        << Backend;
  }
}

// Batched scans: enqueueRange fans one piece per shard into the
// session queues; the scan completes when its last piece flushes and
// reports the merged ascending window via takeCompletedScans().
void enqueueRangeDifferential(const std::string &Backend, unsigned Batch,
                              CombineMode Mode) {
  auto Front = mustCreate(options(Backend, 4, Batch, Mode));
  ShardedSet::Session Session = Front->openSession();
  std::set<SetKey> Model;
  Xoshiro256 Rng(31);
  size_t ScansIssued = 0;
  size_t ScansSeen = 0;
  // Replays completed point ops into the model in completion order.
  // Must run before any scan comparison: pre-scan flushes complete
  // queued updates the model hasn't absorbed yet.
  const auto DrainCompleted = [&](int I) {
    for (const BatchOp &Done : Session.takeCompleted()) {
      bool Expected = false;
      switch (Done.Op) {
      case SetOp::Insert:
        Expected = Model.insert(Done.Key).second;
        break;
      case SetOp::Remove:
        Expected = Model.erase(Done.Key) != 0;
        break;
      case SetOp::Contains:
        Expected = Model.count(Done.Key) != 0;
        break;
      case SetOp::RangeQuery:
        ADD_FAILURE() << "scan pieces must not reach takeCompleted()";
        continue;
      }
      ASSERT_EQ(Done.Result, Expected) << Backend << " op " << I;
    }
  };
  for (int I = 0; I != 3000; ++I) {
    const auto Key = static_cast<SetKey>(Rng.nextBounded(64));
    const unsigned Kind = static_cast<unsigned>(Rng.nextBounded(8));
    if (Kind == 0) {
      const SetKey Hi = Key + static_cast<SetKey>(Rng.nextBounded(32));
      // Flush first: the model answer is only comparable when every
      // already-queued update lands before the scan does (a single
      // session serializes everything, so flush-then-scan pins it).
      Session.flush();
      ASSERT_NO_FATAL_FAILURE(DrainCompleted(I));
      Session.enqueueRange(Key, Hi, /*Tag=*/static_cast<uint64_t>(I));
      Session.flush();
      ++ScansIssued;
      for (ShardedSet::Session::CompletedScan &Scan :
           Session.takeCompletedScans()) {
        ++ScansSeen;
        EXPECT_EQ(Scan.Keys,
                  std::vector<SetKey>(Model.lower_bound(Scan.Lo),
                                      Model.upper_bound(Scan.Hi)))
            << Backend << " scan [" << Scan.Lo << ", " << Scan.Hi
            << "] tag " << Scan.Tag;
      }
      continue;
    }
    const SetOp Op = Kind < 4   ? SetOp::Insert
                     : Kind < 7 ? SetOp::Remove
                                : SetOp::Contains;
    Session.enqueue(Op, Key);
    ASSERT_NO_FATAL_FAILURE(DrainCompleted(I));
  }
  Session.close();
  ASSERT_NO_FATAL_FAILURE(DrainCompleted(-1));
  EXPECT_EQ(ScansIssued, ScansSeen) << Backend;
  EXPECT_EQ(Session.pendingOps(), 0u) << Backend;
}

TEST(ShardedSetTest, EnqueueRangeBatched) {
  for (const char *Backend : Backends)
    enqueueRangeDifferential(Backend, 8, CombineMode::Off);
}

TEST(ShardedSetTest, EnqueueRangeCombining) {
  enqueueRangeDifferential("vbl-chunk", 8, CombineMode::On);
}

//===--------------------------------------------------------------===//
// Session lifecycle (destructor flush, close, moves)
//===--------------------------------------------------------------===//

// Regression: ops queued below BatchSize were silently dropped when a
// session was destroyed without an explicit flush.
TEST(ShardedSetTest, DestructorFlushesResidualOps) {
  auto Front = mustCreate(options("vbl", 4, 64, CombineMode::Off));
  {
    ShardedSet::Session Session = Front->openSession();
    for (SetKey Key = 0; Key != 10; ++Key)
      Session.enqueue(SetOp::Insert, Key);
    EXPECT_EQ(Session.pendingOps(), 10u)
        << "batch should still be queued (BatchSize 64)";
  } // ~Session must flush the residual batch.
  const std::vector<SetKey> Final = Front->snapshot();
  EXPECT_EQ(Final.size(), 10u)
      << "ops enqueued below BatchSize were dropped at session exit";
}

TEST(ShardedSetTest, TakeCompletedStillWorksAfterClose) {
  auto Front = mustCreate(options("vbl", 4, 64, CombineMode::Off));
  ShardedSet::Session Session = Front->openSession();
  for (SetKey Key = 0; Key != 6; ++Key)
    Session.enqueue(SetOp::Insert, Key);
  Session.enqueueRange(0, 9);
  Session.close();
  EXPECT_EQ(Session.pendingOps(), 0u);
  // Results of the close-time flush are still takeable afterwards.
  EXPECT_EQ(Session.takeCompleted().size(), 6u);
  const auto Scans = Session.takeCompletedScans();
  ASSERT_EQ(Scans.size(), 1u);
  EXPECT_EQ(Scans[0].Keys, (std::vector<SetKey>{0, 1, 2, 3, 4, 5}));
  // close() is idempotent; a second take is empty, not stale.
  Session.close();
  EXPECT_TRUE(Session.takeCompleted().empty());
}

TEST(ShardedSetTest, MovedFromSessionDoesNotDoubleFlush) {
  auto Front = mustCreate(options("vbl", 2, 64, CombineMode::Off));
  ShardedSet::Session A = Front->openSession();
  A.enqueue(SetOp::Insert, 1);
  ShardedSet::Session B = std::move(A);
  { ShardedSet::Session C = std::move(B); } // C flushes on destruction.
  // A and B are detached; their destructors must not flush again, and
  // the op must have landed exactly once.
  EXPECT_TRUE(Front->contains(1));
  EXPECT_EQ(Front->snapshot().size(), 1u);
}

TEST(ShardedSetTest, CombineModeParsing) {
  CombineMode Mode = CombineMode::Off;
  EXPECT_TRUE(parseCombineMode("adaptive", Mode));
  EXPECT_EQ(static_cast<int>(Mode),
            static_cast<int>(CombineMode::Adaptive));
  EXPECT_FALSE(parseCombineMode("sometimes", Mode));
  EXPECT_STREQ(combineModeName(CombineMode::On), "on");
}

} // namespace
