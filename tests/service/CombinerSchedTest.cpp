//===- tests/service/CombinerSchedTest.cpp - Combiner under the scheduler ===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Drives CombinerShard directly under the deterministic scheduler
/// with AnalyzedPolicy over a traced VblList backend, so the
/// happens-before detector sees every slot-protocol access:
///
///  - combiner-vs-combiner: two sessions publish concurrently; every
///    interleaving of the publish / drain / handoff protocol must be
///    race-free, deadlock-free, and produce correct op results;
///  - combiner-vs-direct: one session combines while another applies
///    its batch through the adaptive cold path (executeDirect),
///    proving combining is an amortization and not an exclusivity
///    requirement — direct and combined ops interleave safely;
///  - both protocol outcomes — a session draining its own slot and a
///    session finding its slot drained by the other's combine round
///    (the handoff) — are constructed by forced schedules and verified
///    to occur.
///
/// A 2-slot shard keeps the per-episode access count small enough for
/// meaningful exploration prefixes.
///
//===----------------------------------------------------------------------===//

#include "service/FlatCombiner.h"

#include "core/VblList.h"
#include "reclaim/LeakyDomain.h"
#include "sched/AnalyzedPolicy.h"
#include "sched/InterleavingExplorer.h"
#include "sched/TracedPolicy.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>

using namespace vbl;
using namespace vbl::sched;
using namespace vbl::service;

namespace {

using TracedList = VblList<reclaim::LeakyDomain, AnalyzedPolicy>;
using SmallCombiner = CombinerShard<2, TasLock>;

/// One episode's world: a traced list behind a 2-slot combiner, one
/// pre-sized BatchOp per session, and a drain log recording which
/// thread's combine round applied each slot (the handoff witness).
struct CombinerWorld {
  TracedList List;
  SmallCombiner Combiner;
  std::array<BatchOp, 2> Ops;
  /// DrainedBy[slot] = thread id whose Apply ran the slot's batch.
  std::array<int, 2> DrainedBy{-1, -1};

  void applySlot(BatchOp *Batch, uint32_t Count) {
    const TraceContext *Ctx = TraceContext::current();
    const int Actor = Ctx ? static_cast<int>(Ctx->ThreadId) : -1;
    for (uint32_t I = 0; I != Count; ++I) {
      BatchOp &O = Batch[I];
      for (unsigned Slot = 0; Slot != 2; ++Slot)
        if (&O == &Ops[Slot])
          DrainedBy[Slot] = Actor;
      switch (O.Op) {
      case SetOp::Insert:
        O.Result = List.insert(O.Key);
        break;
      case SetOp::Remove:
        O.Result = List.remove(O.Key);
        break;
      case SetOp::Contains:
        O.Result = List.contains(O.Key);
        break;
      case SetOp::RangeQuery:
        vbl_unreachable("combiner sched episodes use point ops only");
      }
    }
  }
};

/// Episode: thread i runs one (Op, Key) through the combiner (slot i)
/// or, with Direct[i] set, through the adaptive cold path. Prefill is
/// applied untraced.
struct CombinerScenario {
  const char *Name;
  std::vector<SetKey> Prefill;
  std::array<std::pair<SetOp, SetKey>, 2> Programs;
  std::array<bool, 2> Direct{false, false};
};

EpisodeFactory factoryFor(const CombinerScenario &S,
                          std::shared_ptr<CombinerWorld> *WorldOut) {
  return [S, WorldOut]() -> Episode {
    auto World = std::make_shared<CombinerWorld>();
    if (WorldOut)
      *WorldOut = World;
    for (SetKey Key : S.Prefill)
      World->List.insert(Key);
    Episode Ep;
    Ep.HeadNode = World->List.headNode();
    Ep.InitialChain = World->List.nodeChain();
    Ep.Holder = World;
    for (unsigned T = 0; T != 2; ++T) {
      const auto [Op, Key] = S.Programs[T];
      const bool Direct = S.Direct[T];
      Ep.Bodies.push_back(std::function<void()>([World, T, Op, Key,
                                                 Direct] {
        BatchOp &O = World->Ops[T];
        O.Op = Op;
        O.Key = Key;
        tracedOp(Op, Key, [&] {
          const auto Apply = [World](BatchOp *Batch, uint32_t Count) {
            World->applySlot(Batch, Count);
          };
          if (Direct) {
            World->Combiner.executeDirect<AnalyzedPolicy>(
                [&] { Apply(&O, 1); });
          } else {
            World->Combiner.execute<AnalyzedPolicy>(T, &O, 1, Apply);
          }
          return O.Result;
        });
      }));
    }
    return Ep;
  };
}

/// Explores a deterministic prefix of the scenario's interleavings,
/// asserting every episode is race-free, deadlock-free, and yields the
/// expected op results.
void expectProtocolClean(const CombinerScenario &S,
                         const std::array<bool, 2> &ExpectedResults,
                         size_t EpisodeCap) {
  std::shared_ptr<CombinerWorld> World;
  InterleavingExplorer Explorer(factoryFor(S, &World));
  size_t Episodes = 0;
  size_t Accesses = 0;
  Explorer.exploreAll(
      [&](const EpisodeResult &Result) {
        ++Episodes;
        Accesses += Result.Raw.size();
        EXPECT_FALSE(Result.Deadlocked) << S.Name;
        for (const analysis::RaceReport &Report : Result.Races)
          ADD_FAILURE() << S.Name << ": " << Report.toString();
        for (unsigned T = 0; T != 2; ++T)
          EXPECT_EQ(World->Ops[T].Result, ExpectedResults[T])
              << S.Name << " thread " << T;
      },
      EpisodeCap);
  EXPECT_GT(Episodes, 0u) << S.Name;
  EXPECT_GT(Accesses, 0u)
      << S.Name << ": no accesses logged — is the policy wired?";
}

TEST(CombinerSchedTest, CombineVsCombineIsRaceFree) {
  const CombinerScenario S{
      "combine_vs_combine", {}, {{{SetOp::Insert, 1}, {SetOp::Insert, 2}}}};
  expectProtocolClean(S, {true, true}, 3000);
}

TEST(CombinerSchedTest, CombineVsCombineSameKey) {
  // Both sessions insert the same key: exactly one must win in every
  // interleaving; the slot protocol must not duplicate or drop ops.
  const CombinerScenario S{
      "combine_same_key", {}, {{{SetOp::Insert, 5}, {SetOp::Insert, 5}}}};
  std::shared_ptr<CombinerWorld> World;
  InterleavingExplorer Explorer(factoryFor(S, &World));
  size_t Episodes = 0;
  Explorer.exploreAll(
      [&](const EpisodeResult &Result) {
        ++Episodes;
        EXPECT_FALSE(Result.Deadlocked);
        for (const analysis::RaceReport &Report : Result.Races)
          ADD_FAILURE() << S.Name << ": " << Report.toString();
        EXPECT_NE(World->Ops[0].Result, World->Ops[1].Result)
            << "same-key inserts must resolve to one winner";
        EXPECT_TRUE(World->List.contains(5));
      },
      3000);
  EXPECT_GT(Episodes, 0u);
}

TEST(CombinerSchedTest, CombinerVsDirectHandoff) {
  // Thread 0 combines, thread 1 takes the adaptive cold path straight
  // into the backend. Every interleaving of slot protocol vs direct
  // list access must stay race-free with correct results.
  const CombinerScenario S{"combiner_vs_direct",
                           {3},
                           {{{SetOp::Insert, 1}, {SetOp::Remove, 3}}},
                           {false, true}};
  expectProtocolClean(S, {true, true}, 3000);
}

TEST(CombinerSchedTest, DirectVsDirectProbe) {
  // Both sessions on the cold path: only the InFlight probe and the
  // backend interleave; the heat CAS traffic must be race-free too.
  const CombinerScenario S{"direct_vs_direct",
                           {},
                           {{{SetOp::Insert, 1}, {SetOp::Insert, 2}}},
                           {true, true}};
  expectProtocolClean(S, {true, true}, 3000);
}

// Construct both protocol outcomes with forced schedules: (a) every
// session drains its own slot (sequential execution), (b) one session
// publishes early and the other's combine round drains it (handoff).
TEST(CombinerSchedTest, BothHandoffOutcomesObserved) {
  const CombinerScenario S{
      "handoff_outcomes", {}, {{{SetOp::Insert, 1}, {SetOp::Insert, 2}}}};
  std::shared_ptr<CombinerWorld> World;
  InterleavingExplorer Explorer(factoryFor(S, &World));

  // (a) Thread 0 runs to completion before thread 1 starts: each
  // session's own combine round applies its own batch.
  EpisodeResult Sequential = Explorer.run({});
  EXPECT_FALSE(Sequential.Deadlocked);
  EXPECT_TRUE(Sequential.Races.empty());
  EXPECT_EQ(World->DrainedBy[0], 0);
  EXPECT_EQ(World->DrainedBy[1], 1);
  EXPECT_TRUE(World->Ops[0].Result);
  EXPECT_TRUE(World->Ops[1].Result);

  // (b) Force thread 1 to publish its slot first (the publish is three
  // policy writes; grant a few extra steps for its Done pre-check),
  // then let the default grant finish thread 0, whose combine round
  // must drain BOTH slots — thread 1 observes the handoff. Sweep the
  // forced-prefix length: at least one prefix must exhibit a drain of
  // a slot by the other thread.
  bool SawHandoff = false;
  for (unsigned Steps = 1; Steps != 12 && !SawHandoff; ++Steps) {
    EpisodeResult Forced =
        Explorer.run(std::vector<unsigned>(Steps, 1));
    EXPECT_FALSE(Forced.Deadlocked);
    EXPECT_TRUE(Forced.Races.empty());
    EXPECT_TRUE(World->Ops[0].Result);
    EXPECT_TRUE(World->Ops[1].Result);
    SawHandoff = World->DrainedBy[0] == 1 || World->DrainedBy[1] == 0;
  }
  EXPECT_TRUE(SawHandoff)
      << "no forced prefix produced a combine-round handoff";
}

} // namespace
