//===- tests/service/TrafficGenTest.cpp - Traffic model statistics -------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Statistical acceptance for the service traffic model. Every test is
/// seeded, so the draws — and therefore the test statistics — are
/// bit-exact across runs: a failure is a generator bug, not noise.
///
///  - theta = 0 must degenerate to uniform (chi-squared test against
///    the uniform expectation, threshold far above the df=63 critical
///    value at alpha = 0.001);
///  - hot-key empirical mass must match ZipfianGen::rankMass's closed
///    form (the Gray et al. inversion realizes the distribution it
///    advertises);
///  - the update-mix schedule must switch phases exactly on its op
///    boundaries, and the realized update fraction must track the
///    configured percentage;
///  - TrafficGen must partition the session space across workers and
///    replay identically for identical (seed, worker).
///
//===----------------------------------------------------------------------===//

#include "service/TrafficGen.h"

#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

using namespace vbl;
using namespace vbl::service;

namespace {

//===--------------------------------------------------------------===//
// ZipfianGen
//===--------------------------------------------------------------===//

// theta = 0: every rank must be exactly equally likely. Pearson's
// chi-squared over 64 bins with 64000 draws; the critical value for
// df = 63 at alpha = 0.001 is 103.4, and the seeded statistic is
// deterministic, so a pass is stable and a generator skew (e.g. the
// inversion's eta misapplied at theta = 0) blows far past the bound.
TEST(ZipfianGenTest, ThetaZeroIsUniformChiSquared) {
  constexpr uint64_t Bins = 64;
  constexpr uint64_t Draws = 64000;
  ZipfianGen Zipf(Bins, 0.0);
  Xoshiro256 Rng(12345);
  std::vector<uint64_t> Counts(Bins, 0);
  for (uint64_t I = 0; I != Draws; ++I) {
    const uint64_t Rank = Zipf.next(Rng);
    ASSERT_LT(Rank, Bins);
    ++Counts[Rank];
  }
  const double Expected = static_cast<double>(Draws) / Bins;
  double Chi2 = 0.0;
  for (uint64_t Count : Counts) {
    const double Diff = static_cast<double>(Count) - Expected;
    Chi2 += Diff * Diff / Expected;
  }
  EXPECT_LT(Chi2, 103.4) << "theta=0 draw is not uniform";
}

// At theta = 0, rankMass must be exactly 1/N for every rank.
TEST(ZipfianGenTest, ThetaZeroMassIsFlat) {
  ZipfianGen Zipf(128, 0.0);
  for (uint64_t Rank : {0ull, 1ull, 63ull, 127ull})
    EXPECT_NEAR(Zipf.rankMass(Rank), 1.0 / 128.0, 1e-12);
}

// The closed-form masses are a probability distribution.
TEST(ZipfianGenTest, RankMassSumsToOne) {
  for (double Theta : {0.0, 0.6, 0.9, 0.99}) {
    ZipfianGen Zipf(512, Theta);
    double Sum = 0.0;
    for (uint64_t Rank = 0; Rank != 512; ++Rank)
      Sum += Zipf.rankMass(Rank);
    EXPECT_NEAR(Sum, 1.0, 1e-9) << "theta=" << Theta;
  }
}

// Under skew, the empirical frequency of each hot rank must match the
// closed form. The Gray et al. inversion realizes ranks 0 and 1
// EXACTLY (they have dedicated branches: Uz < 1 and Uz < 1 +
// 0.5^theta), so those get a tight tolerance — 400k draws put the
// relative standard error of rank 0's count under 0.5%. Middle ranks
// come from the continuous approximation N * (eta*U - eta + 1)^alpha,
// which is known (YCSB inherits this) to run up to ~20% hot for the
// first few ranks at high theta; 25% bounds the approximation while
// still catching a broken rank mapping (adjacent hot ranks differ by
// ~2^theta, i.e. ~100%).
TEST(ZipfianGenTest, HotKeyMassMatchesClosedForm) {
  constexpr uint64_t N = 1024;
  constexpr uint64_t Draws = 400000;
  for (double Theta : {0.6, 0.99}) {
    ZipfianGen Zipf(N, Theta);
    Xoshiro256 Rng(99 + static_cast<uint64_t>(Theta * 100));
    std::vector<uint64_t> Counts(N, 0);
    for (uint64_t I = 0; I != Draws; ++I)
      ++Counts[Zipf.next(Rng)];
    for (uint64_t Rank = 0; Rank != 8; ++Rank) {
      const double Empirical =
          static_cast<double>(Counts[Rank]) / Draws;
      const double Expected = Zipf.rankMass(Rank);
      const double Tolerance = Rank < 2 ? 0.02 : 0.25;
      EXPECT_NEAR(Empirical, Expected, Expected * Tolerance)
          << "theta=" << Theta << " rank=" << Rank;
    }
    // Skew ordering: the head dominates and frequencies decay.
    EXPECT_GT(Counts[0], Counts[1]);
    EXPECT_GT(Counts[1], Counts[15]);
  }
}

// The generator must never emit a rank outside [0, N), including at
// the clamped theta ~ 1 singularity and N = 1.
TEST(ZipfianGenTest, RanksStayInRange) {
  for (uint64_t N : {1ull, 2ull, 7ull}) {
    for (double Theta : {0.0, 0.99, 1.0}) {
      ZipfianGen Zipf(N, Theta);
      SplitMix64 Rng(7);
      for (int I = 0; I != 2000; ++I)
        ASSERT_LT(Zipf.next(Rng), N) << "N=" << N << " theta=" << Theta;
    }
  }
}

//===--------------------------------------------------------------===//
// UpdateMixSchedule
//===--------------------------------------------------------------===//

TEST(UpdateMixScheduleTest, PhasesSwitchOnExactBoundaries) {
  UpdateMixSchedule Mix({{100, 50}, {200, 5}}, 20);
  EXPECT_EQ(Mix.cycleOps(), 300u);
  EXPECT_EQ(Mix.updatePercentAt(0), 50u);
  EXPECT_EQ(Mix.updatePercentAt(99), 50u);
  EXPECT_EQ(Mix.updatePercentAt(100), 5u);
  EXPECT_EQ(Mix.updatePercentAt(299), 5u);
  // Cyclic: the schedule wraps, modelling a recurring daily mix.
  EXPECT_EQ(Mix.updatePercentAt(300), 50u);
  EXPECT_EQ(Mix.updatePercentAt(400), 5u);
}

TEST(UpdateMixScheduleTest, EmptyScheduleIsFlatFallback) {
  UpdateMixSchedule Mix({}, 35);
  EXPECT_EQ(Mix.cycleOps(), 0u);
  for (uint64_t Index : {0ull, 1ull, 12345ull})
    EXPECT_EQ(Mix.updatePercentAt(Index), 35u);
}

//===--------------------------------------------------------------===//
// BurstyArrivals
//===--------------------------------------------------------------===//

// Exponential interarrivals: the sample mean over 200k draws must sit
// within 2% of the configured mean (relative SE = 1/sqrt(n) ~ 0.22%).
TEST(BurstyArrivalsTest, MeanGapMatchesConfig) {
  BurstyArrivals::Config Cfg;
  Cfg.MeanGapNs = 1000.0;
  BurstyArrivals Arrivals(Cfg);
  Xoshiro256 Rng(4242);
  double Sum = 0.0;
  constexpr int Draws = 200000;
  for (int I = 0; I != Draws; ++I)
    Sum += static_cast<double>(Arrivals.nextGapNs(Rng));
  EXPECT_NEAR(Sum / Draws, 1000.0, 20.0);
}

// Burst phases must run BurstFactor times hotter than calm phases.
TEST(BurstyArrivalsTest, BurstPhasesAreHotter) {
  BurstyArrivals::Config Cfg;
  Cfg.MeanGapNs = 1000.0;
  Cfg.BurstFactor = 10.0;
  Cfg.BurstOps = 500;
  Cfg.CalmOps = 500;
  BurstyArrivals Arrivals(Cfg);
  Xoshiro256 Rng(4243);
  double BurstSum = 0.0, CalmSum = 0.0;
  constexpr int Cycles = 200;
  for (int C = 0; C != Cycles; ++C) {
    for (uint64_t I = 0; I != Cfg.BurstOps; ++I)
      BurstSum += static_cast<double>(Arrivals.nextGapNs(Rng));
    for (uint64_t I = 0; I != Cfg.CalmOps; ++I)
      CalmSum += static_cast<double>(Arrivals.nextGapNs(Rng));
  }
  const double BurstMean = BurstSum / (Cycles * Cfg.BurstOps);
  const double CalmMean = CalmSum / (Cycles * Cfg.CalmOps);
  EXPECT_NEAR(BurstMean, 100.0, 5.0);
  EXPECT_NEAR(CalmMean, 1000.0, 50.0);
}

//===--------------------------------------------------------------===//
// TrafficGen
//===--------------------------------------------------------------===//

TEST(TrafficGenTest, SessionSpacePartitionsAcrossWorkers) {
  TrafficConfig Cfg;
  Cfg.Sessions = 10; // deliberately not divisible by 4
  constexpr unsigned Workers = 4;
  uint64_t Total = 0;
  for (unsigned W = 0; W != Workers; ++W) {
    TrafficGen Gen(Cfg, W, Workers);
    Total += Gen.sessionsOwned();
  }
  EXPECT_EQ(Total, Cfg.Sessions);
}

TEST(TrafficGenTest, SameSeedReplaysIdentically) {
  TrafficConfig Cfg;
  Cfg.Theta = 0.9;
  Cfg.Sessions = 64;
  Cfg.Seed = 777;
  TrafficGen A(Cfg, 0, 2), B(Cfg, 0, 2);
  for (int I = 0; I != 5000; ++I) {
    const TrafficGen::Item X = A.next(), Y = B.next();
    ASSERT_EQ(X.Key, Y.Key);
    ASSERT_EQ(static_cast<int>(X.Op), static_cast<int>(Y.Op));
    ASSERT_EQ(X.SessionId, Y.SessionId);
  }
  // Distinct workers own disjoint session slices, so their streams
  // must diverge immediately in session ids.
  TrafficGen C(Cfg, 1, 2);
  EXPECT_NE(A.next().SessionId, C.next().SessionId);
}

TEST(TrafficGenTest, KeysStayInRangeAndFollowSkew) {
  TrafficConfig Cfg;
  Cfg.KeyRange = 256;
  Cfg.Theta = 0.99;
  Cfg.Sessions = 128;
  TrafficGen Gen(Cfg, 0, 1);
  std::map<SetKey, uint64_t> Counts;
  constexpr int Draws = 100000;
  for (int I = 0; I != Draws; ++I) {
    const TrafficGen::Item It = Gen.next();
    ASSERT_GE(It.Key, 0);
    ASSERT_LT(It.Key, Cfg.KeyRange);
    ++Counts[It.Key];
  }
  // Rank 0 is the hottest key; at theta=0.99 it should dwarf the
  // median key even though every session draws independently.
  EXPECT_GT(Counts[0], static_cast<uint64_t>(Draws) / 20);
  EXPECT_GT(Counts[0], Counts[128] * 10);
}

// The realized update fraction must track the flat percentage (the op
// coin is per-session, so this also exercises the per-session streams).
TEST(TrafficGenTest, UpdateFractionMatchesPercent) {
  for (unsigned Percent : {0u, 20u, 100u}) {
    TrafficConfig Cfg;
    Cfg.UpdatePercent = Percent;
    Cfg.Sessions = 256;
    Cfg.Seed = 31 + Percent;
    TrafficGen Gen(Cfg, 0, 1);
    constexpr int Draws = 100000;
    int Updates = 0;
    for (int I = 0; I != Draws; ++I)
      if (Gen.next().Op != SetOp::Contains)
        ++Updates;
    EXPECT_NEAR(static_cast<double>(Updates) / Draws,
                Percent / 100.0, 0.01)
        << "percent=" << Percent;
  }
}

// With a phase schedule, the update fraction must follow the phase the
// global op counter is in — measured per phase window across cycles.
TEST(TrafficGenTest, MixPhasesShapeTheStream) {
  TrafficConfig Cfg;
  Cfg.Sessions = 64;
  Cfg.Phases = {{1000, 80}, {1000, 0}};
  TrafficGen Gen(Cfg, 0, 1);
  uint64_t HeavyUpdates = 0, QuietUpdates = 0;
  constexpr int Cycles = 40;
  for (int C = 0; C != Cycles; ++C) {
    for (int I = 0; I != 1000; ++I)
      if (Gen.next().Op != SetOp::Contains)
        ++HeavyUpdates;
    for (int I = 0; I != 1000; ++I)
      if (Gen.next().Op != SetOp::Contains)
        ++QuietUpdates;
  }
  EXPECT_NEAR(static_cast<double>(HeavyUpdates) / (Cycles * 1000),
              0.80, 0.02);
  EXPECT_EQ(QuietUpdates, 0u);
}

} // namespace
