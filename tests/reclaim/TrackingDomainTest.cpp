//===- tests/reclaim/TrackingDomainTest.cpp - Debug domain tests ---------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "reclaim/TrackingDomain.h"

#include <gtest/gtest.h>

#include <atomic>

using namespace vbl;
using namespace vbl::reclaim;

namespace {

struct Tracked {
  explicit Tracked(std::atomic<int> &Counter) : Counter(Counter) {}
  ~Tracked() { Counter.fetch_add(1, std::memory_order_relaxed); }
  std::atomic<int> &Counter;
};

} // namespace

TEST(TrackingDomain, NothingFreedDuringRun) {
  std::atomic<int> Destroyed{0};
  {
    TrackingDomain Domain;
    Domain.retire(new Tracked(Destroyed));
    Domain.collectAll();
    EXPECT_EQ(Destroyed.load(), 0);
    EXPECT_EQ(Domain.retiredCount(), 1u);
  }
  EXPECT_EQ(Destroyed.load(), 1) << "destructor frees exactly once";
}

TEST(TrackingDomain, DetectsDoubleRetire) {
  std::atomic<int> Destroyed{0};
  TrackingDomain Domain;
  Tracked *P = new Tracked(Destroyed);
  Domain.retire(P);
  EXPECT_FALSE(Domain.sawDoubleRetire());
  Domain.retire(P);
  EXPECT_TRUE(Domain.sawDoubleRetire());
}

TEST(TrackingDomain, GuardCounting) {
  TrackingDomain Domain;
  EXPECT_EQ(Domain.activeGuards(), 0u);
  {
    TrackingDomain::Guard Outer(Domain);
    EXPECT_EQ(Domain.activeGuards(), 1u);
    {
      TrackingDomain::Guard Inner(Domain);
      EXPECT_EQ(Domain.activeGuards(), 2u);
    }
    EXPECT_EQ(Domain.activeGuards(), 1u);
  }
  EXPECT_EQ(Domain.activeGuards(), 0u);
}

TEST(TrackingDomain, ManyDistinctRetires) {
  std::atomic<int> Destroyed{0};
  {
    TrackingDomain Domain;
    for (int I = 0; I != 100; ++I)
      Domain.retire(new Tracked(Destroyed));
    EXPECT_FALSE(Domain.sawDoubleRetire());
    EXPECT_EQ(Domain.retiredCount(), 100u);
  }
  EXPECT_EQ(Destroyed.load(), 100);
}
