//===- tests/reclaim/NodePoolTest.cpp - Node pool lifecycle --------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
//
// Lifecycle coverage for the per-thread slab pool: local recycling,
// thread-exit donation, cross-thread block migration, slab exhaustion
// (heap fallback), the oversize escape hatch, and the bypass switch.
// Every behavioural assertion about the pooled fast path is skipped
// when the whole binary runs bypassed (VBL_POOL_BYPASS=1 under ASan):
// in that mode there is no pool to observe, by design.
//
//===----------------------------------------------------------------------===//

#include "reclaim/EpochDomain.h"
#include "reclaim/NodePool.h"
#include "reclaim/TrackingDomain.h"

#include "core/VblChunkList.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace vbl::reclaim;

namespace {

struct PoolBox {
  uint64_t Payload[4] = {1, 2, 3, 4};
};

TEST(NodePoolTest, LocalFreeListRecyclesLifo) {
  if (NodePool::bypassed())
    GTEST_SKIP() << "pool bypassed; nothing to recycle";
  void *First = NodePool::allocate(64, 8);
  NodePool::deallocate(First, 64, 8);
  // The local free list is LIFO: the very next same-class allocation on
  // this thread must return the block just freed.
  void *Second = NodePool::allocate(64, 8);
  EXPECT_EQ(First, Second);
  NodePool::deallocate(Second, 64, 8);
}

TEST(NodePoolTest, SameClassServesSizeAndAlignmentFamily) {
  // 33..64 bytes and alignments up to 64 all land in one class; the
  // block must satisfy the strictest alignment in the family.
  void *Ptr = NodePool::allocate(40, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(Ptr) % 64, 0u);
  NodePool::deallocate(Ptr, 40, 64);
}

TEST(NodePoolTest, ThreadExitDonatesCachedBlocks) {
  if (NodePool::bypassed())
    GTEST_SKIP() << "pool bypassed; nothing to donate";
  constexpr size_t Blocks = 40;
  const NodePool::Stats Before = NodePool::stats();
  std::thread([] {
    std::vector<void *> Held;
    for (size_t I = 0; I != Blocks; ++I)
      Held.push_back(NodePool::allocate(32, 8));
    for (void *Ptr : Held)
      NodePool::deallocate(Ptr, 32, 8);
    // All Blocks now sit in this thread's cache (below the cap); the
    // thread-cache destructor must hand every one back to the global
    // pool rather than strand them.
  }).join();
  const NodePool::Stats After = NodePool::stats();
  EXPECT_GE(After.BlocksDonated - Before.BlocksDonated, Blocks);
}

TEST(NodePoolTest, CrossThreadFreeThenReuse) {
  if (NodePool::bypassed())
    GTEST_SKIP() << "pool bypassed; no cross-thread migration";
  // A block allocated here and freed on another thread lands in *that*
  // thread's cache and serves its next allocation — the pattern EBR
  // produces when the collecting thread differs from the inserting one.
  void *Block = NodePool::allocate(128, 8);
  std::thread([Block] {
    NodePool::deallocate(Block, 128, 8);
    void *Reused = NodePool::allocate(128, 8);
    EXPECT_EQ(Block, Reused);
    NodePool::deallocate(Reused, 128, 8);
  }).join();
}

TEST(NodePoolTest, SlabExhaustionFallsBackToHeapBlocks) {
  if (NodePool::bypassed())
    GTEST_SKIP() << "pool bypassed; no slab accounting";
  // Freeze slab growth below what is already carved: refills can only
  // drain existing free blocks, then the pool must mint single
  // class-sized heap blocks (FallbackBlocks) instead of failing.
  NodePool::setSlabByteLimitForTest(1);
  const NodePool::Stats Before = NodePool::stats();
  std::vector<void *> Held;
  while (NodePool::stats().FallbackBlocks == Before.FallbackBlocks &&
         Held.size() < 100000)
    Held.push_back(NodePool::allocate(1024, 8));
  const NodePool::Stats After = NodePool::stats();
  EXPECT_GT(After.FallbackBlocks, Before.FallbackBlocks);
  EXPECT_EQ(After.SlabsCarved, Before.SlabsCarved);
  for (void *Ptr : Held)
    NodePool::deallocate(Ptr, 1024, 8);
  NodePool::setSlabByteLimitForTest(0);
}

TEST(NodePoolTest, OversizeRequestsRoundTripThroughHeap) {
  const NodePool::Stats Before = NodePool::stats();
  void *Big = NodePool::allocate(4096, 8);
  ASSERT_NE(Big, nullptr);
  NodePool::deallocate(Big, 4096, 8);
  // Over-aligned requests take the same escape hatch.
  void *Aligned = NodePool::allocate(64, 128);
  ASSERT_NE(Aligned, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(Aligned) % 128, 0u);
  NodePool::deallocate(Aligned, 64, 128);
  const NodePool::Stats After = NodePool::stats();
  EXPECT_GE(After.HeapAllocs - Before.HeapAllocs, 2u);
  EXPECT_GE(After.HeapFrees - Before.HeapFrees, 2u);
}

TEST(NodePoolTest, ScopedBypassRoundTripsThroughHeap) {
  const NodePool::Stats Before = NodePool::stats();
  {
    NodePool::ScopedBypass Bypass;
    EXPECT_TRUE(NodePool::bypassed());
    // The whole lifetime sits inside the scope — the containment rule.
    PoolBox *Box = poolCreate<PoolBox>();
    EXPECT_EQ(Box->Payload[3], 4u);
    poolDestroy(Box);
  }
  const NodePool::Stats After = NodePool::stats();
  EXPECT_GE(After.HeapAllocs - Before.HeapAllocs, 1u);
  EXPECT_GE(After.HeapFrees - Before.HeapFrees, 1u);
}

TEST(NodePoolTest, ScopedBypassNests) {
  {
    NodePool::ScopedBypass Outer;
    {
      NodePool::ScopedBypass Inner;
      EXPECT_TRUE(NodePool::bypassed());
    }
    EXPECT_TRUE(NodePool::bypassed());
  }
}

TEST(NodePoolTest, PoolRetireFreesThroughEpochDomain) {
  // poolRetire defers the pool free behind the grace period exactly
  // like retire defers delete; collectAll from a quiescent thread must
  // recycle everything (freedCount is the domain's own accounting).
  EpochDomain Domain;
  constexpr int Count = 64;
  for (int I = 0; I != Count; ++I) {
    EpochDomain::Guard G(Domain);
    poolRetire(Domain, poolCreate<PoolBox>());
  }
  Domain.collectAll();
  EXPECT_EQ(Domain.freedCount(), static_cast<uint64_t>(Count));
}

//===----------------------------------------------------------------------===//
// Chunk-shaped requests (core/VblChunkList.h). The unrolled list's
// nodes are cache-line-aligned multi-line blocks — the largest, most
// alignment-sensitive shapes the lists ever ask the pool for.
//===----------------------------------------------------------------------===//

TEST(NodePoolTest, ChunkShapesStayWithinPooledClasses) {
  // Every registered chunk shape must be servable by a size class
  // (bytes <= MaxBlockBytes, align <= CacheLineBytes): chunk
  // allocation must never fall through to the oversize heap path.
  static_assert(vbl::VblChunkList<1>::ChunkBytes <= NodePool::MaxBlockBytes);
  static_assert(vbl::VblChunkList<7>::ChunkBytes <= NodePool::MaxBlockBytes);
  static_assert(vbl::VblChunkList<15>::ChunkBytes <= NodePool::MaxBlockBytes);
  static_assert(vbl::VblChunkList<63>::ChunkBytes <= NodePool::MaxBlockBytes);
  static_assert(vbl::VblChunkList<7>::ChunkAlignment ==
                vbl::CacheLineBytes);
  if (NodePool::bypassed())
    GTEST_SKIP() << "pool bypassed; class accounting not observable";
  const NodePool::Stats Before = NodePool::stats();
  void *Ptr = NodePool::allocate(vbl::VblChunkList<15>::ChunkBytes,
                                 vbl::VblChunkList<15>::ChunkAlignment);
  NodePool::deallocate(Ptr, vbl::VblChunkList<15>::ChunkBytes,
                       vbl::VblChunkList<15>::ChunkAlignment);
  const NodePool::Stats After = NodePool::stats();
  EXPECT_EQ(After.HeapAllocs, Before.HeapAllocs)
      << "chunk-sized request escaped to the oversize heap path";
}

TEST(NodePoolTest, ChunkAllocationsAreLineAligned) {
  // Alignment must hold in both pooled and bypass mode — the chunk
  // layout argument (anchor+header on line 0, keys on line 1+) depends
  // on it.
  for (size_t Bytes :
       {vbl::VblChunkList<1>::ChunkBytes, vbl::VblChunkList<7>::ChunkBytes,
        vbl::VblChunkList<15>::ChunkBytes}) {
    void *Ptr = NodePool::allocate(Bytes, vbl::CacheLineBytes);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(Ptr) % vbl::CacheLineBytes, 0u)
        << "bytes=" << Bytes;
    NodePool::deallocate(Ptr, Bytes, vbl::CacheLineBytes);
  }
}

TEST(NodePoolTest, ChunkClassRecyclesLifo) {
  if (NodePool::bypassed())
    GTEST_SKIP() << "pool bypassed; nothing to recycle";
  constexpr size_t Bytes = vbl::VblChunkList<7>::ChunkBytes;
  void *First = NodePool::allocate(Bytes, vbl::CacheLineBytes);
  NodePool::deallocate(First, Bytes, vbl::CacheLineBytes);
  void *Second = NodePool::allocate(Bytes, vbl::CacheLineBytes);
  EXPECT_EQ(First, Second);
  NodePool::deallocate(Second, Bytes, vbl::CacheLineBytes);
}

TEST(NodePoolTest, ChunkListLifecycleCleanUnderBypass) {
  // A whole list built and torn down inside a bypass scope: every
  // chunk allocation round-trips through the heap (ASan-visible), and
  // the destructor must pair each one exactly.
  NodePool::ScopedBypass Bypass;
  {
    vbl::VblChunkList<7> List;
    for (vbl::SetKey Key = 1; Key <= 40; ++Key)
      ASSERT_TRUE(List.insert(Key));
    for (vbl::SetKey Key = 1; Key <= 40; Key += 2)
      ASSERT_TRUE(List.remove(Key));
    List.reclaimDomain().collectAll();
  }
}

TEST(NodePoolTest, PoolRetireFreesThroughTrackingDomain) {
  // TrackingDomain frees retirements in its destructor; running it with
  // pool-backed nodes under ASan/LSan proves the deleter pairing is
  // right in both pool and bypass mode.
  {
    TrackingDomain Domain;
    for (int I = 0; I != 16; ++I)
      poolRetire(Domain, poolCreate<PoolBox>());
    EXPECT_EQ(Domain.retiredCount(), 16u);
  }
}

} // namespace
