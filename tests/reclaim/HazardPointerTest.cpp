//===- tests/reclaim/HazardPointerTest.cpp - HP unit tests ---------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "reclaim/HazardPointerDomain.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace vbl;
using namespace vbl::reclaim;

namespace {

struct Tracked {
  explicit Tracked(std::atomic<int> &Counter) : Counter(Counter) {}
  ~Tracked() { Counter.fetch_add(1, std::memory_order_relaxed); }
  std::atomic<int> &Counter;
};

/// Minimal Treiber stack: the canonical hazard-pointer client. Used as
/// an integration test of protect/retire under real contention.
class TreiberStack {
public:
  explicit TreiberStack(HazardPointerDomain &Domain) : Domain(Domain) {}

  ~TreiberStack() {
    Node *Curr = Top.load(std::memory_order_relaxed);
    while (Curr) {
      Node *Next = Curr->Next;
      delete Curr;
      Curr = Next;
    }
  }

  void push(long Value) {
    Node *NewNode = new Node{Value, nullptr};
    NewNode->Next = Top.load(std::memory_order_relaxed);
    while (!Top.compare_exchange_weak(NewNode->Next, NewNode,
                                      std::memory_order_release,
                                      std::memory_order_relaxed)) {
    }
  }

  bool pop(long &Out) {
    HazardPointerDomain::Guard G(Domain);
    for (;;) {
      Node *Head = G.protect(0, Top);
      if (!Head)
        return false;
      Node *Next = Head->Next;
      if (Top.compare_exchange_strong(Head, Next,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
        Out = Head->Value;
        Domain.retire(Head);
        return true;
      }
    }
  }

private:
  struct Node {
    long Value;
    Node *Next;
  };
  HazardPointerDomain &Domain;
  std::atomic<Node *> Top{nullptr};
};

} // namespace

TEST(HazardPointerDomain, RetireWithoutProtectionFrees) {
  std::atomic<int> Destroyed{0};
  {
    HazardPointerDomain Domain;
    for (int I = 0; I != 8; ++I)
      Domain.retire(new Tracked(Destroyed));
    Domain.collectAll();
    EXPECT_EQ(Destroyed.load(), 8);
  }
}

TEST(HazardPointerDomain, ProtectedPointerSurvivesScan) {
  std::atomic<int> Destroyed{0};
  HazardPointerDomain Domain;
  std::atomic<Tracked *> Source{new Tracked(Destroyed)};
  {
    HazardPointerDomain::Guard G(Domain);
    Tracked *P = G.protect(0, Source);
    ASSERT_NE(P, nullptr);
    Domain.retire(P);
    Domain.collectAll();
    EXPECT_EQ(Destroyed.load(), 0) << "freed while protected";
  }
  // Guard destroyed: protection gone.
  Domain.collectAll();
  EXPECT_EQ(Destroyed.load(), 1);
}

TEST(HazardPointerDomain, ClearSlotReleasesProtection) {
  std::atomic<int> Destroyed{0};
  HazardPointerDomain Domain;
  std::atomic<Tracked *> Source{new Tracked(Destroyed)};
  HazardPointerDomain::Guard G(Domain);
  Tracked *P = G.protect(1, Source);
  Domain.retire(P);
  Domain.collectAll();
  EXPECT_EQ(Destroyed.load(), 0);
  G.clear(1);
  Domain.collectAll();
  EXPECT_EQ(Destroyed.load(), 1);
}

TEST(HazardPointerDomain, ProtectFollowsConcurrentSwap) {
  // protect() must re-validate: if the source moves mid-protection the
  // returned pointer must match a value that was protected while still
  // reachable. We simulate the swap deterministically by swapping
  // between two objects and checking protect returns one of them.
  std::atomic<int> Destroyed{0};
  HazardPointerDomain Domain;
  Tracked *A = new Tracked(Destroyed);
  Tracked *B = new Tracked(Destroyed);
  std::atomic<Tracked *> Source{A};
  std::atomic<bool> Stop{false};
  std::thread Swapper([&] {
    while (!Stop.load(std::memory_order_acquire)) {
      Source.store(B, std::memory_order_release);
      Source.store(A, std::memory_order_release);
    }
  });
  for (int I = 0; I != 10000; ++I) {
    HazardPointerDomain::Guard G(Domain);
    Tracked *P = G.protect(0, Source);
    EXPECT_TRUE(P == A || P == B);
  }
  Stop.store(true, std::memory_order_release);
  Swapper.join();
  delete A;
  delete B;
}

TEST(HazardPointerDomain, TreiberStackStress) {
  constexpr int NumThreads = 4;
  constexpr int PerThread = 5000;
  HazardPointerDomain Domain;
  std::atomic<long> PopSum{0};
  std::atomic<int> PopCount{0};
  {
    TreiberStack Stack(Domain);
    std::vector<std::thread> Threads;
    for (int T = 0; T != NumThreads; ++T) {
      Threads.emplace_back([&, T] {
        long Local = 0;
        for (int I = 0; I != PerThread; ++I) {
          Stack.push(T * PerThread + I);
          long V;
          if (Stack.pop(V)) {
            Local += V;
            PopCount.fetch_add(1, std::memory_order_relaxed);
          }
        }
        PopSum.fetch_add(Local, std::memory_order_relaxed);
      });
    }
    for (auto &Thread : Threads)
      Thread.join();
    // Every push is eventually popped or still in the stack; pops must
    // never exceed pushes.
    EXPECT_LE(PopCount.load(), NumThreads * PerThread);

    // Drain what is left and check conservation of the total sum.
    long V;
    while (Stack.pop(V)) {
      PopSum.fetch_add(V, std::memory_order_relaxed);
      PopCount.fetch_add(1, std::memory_order_relaxed);
    }
    EXPECT_EQ(PopCount.load(), NumThreads * PerThread);
    const long N = static_cast<long>(NumThreads) * PerThread;
    EXPECT_EQ(PopSum.load(), N * (N - 1) / 2);
  }
  Domain.collectAll();
  EXPECT_EQ(Domain.freedCount(), Domain.retiredCount());
}

TEST(HazardPointerDomain, ThreadExitOrphansAdopted) {
  std::atomic<int> Destroyed{0};
  {
    HazardPointerDomain Domain;
    std::thread Worker([&] {
      for (int I = 0; I != 3; ++I)
        Domain.retire(new Tracked(Destroyed));
    });
    Worker.join();
  }
  EXPECT_EQ(Destroyed.load(), 3);
}
