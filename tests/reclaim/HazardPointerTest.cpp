//===- tests/reclaim/HazardPointerTest.cpp - HP unit tests ---------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "reclaim/HazardPointerDomain.h"

#include "stats/Stats.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace vbl;
using namespace vbl::reclaim;

namespace {

struct Tracked {
  explicit Tracked(std::atomic<int> &Counter) : Counter(Counter) {}
  ~Tracked() { Counter.fetch_add(1, std::memory_order_relaxed); }
  std::atomic<int> &Counter;
};

/// Minimal Treiber stack: the canonical hazard-pointer client. Used as
/// an integration test of protect/retire under real contention.
class TreiberStack {
public:
  explicit TreiberStack(HazardPointerDomain &Domain) : Domain(Domain) {}

  ~TreiberStack() {
    Node *Curr = Top.load(std::memory_order_relaxed);
    while (Curr) {
      Node *Next = Curr->Next;
      delete Curr;
      Curr = Next;
    }
  }

  void push(long Value) {
    Node *NewNode = new Node{Value, nullptr};
    NewNode->Next = Top.load(std::memory_order_relaxed);
    while (!Top.compare_exchange_weak(NewNode->Next, NewNode,
                                      std::memory_order_release,
                                      std::memory_order_relaxed)) {
    }
  }

  bool pop(long &Out) {
    HazardPointerDomain::Guard G(Domain);
    for (;;) {
      Node *Head = G.protect(0, Top);
      if (!Head)
        return false;
      Node *Next = Head->Next;
      if (Top.compare_exchange_strong(Head, Next,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
        Out = Head->Value;
        Domain.retire(Head);
        return true;
      }
    }
  }

private:
  struct Node {
    long Value;
    Node *Next;
  };
  HazardPointerDomain &Domain;
  std::atomic<Node *> Top{nullptr};
};

} // namespace

TEST(HazardPointerDomain, RetireWithoutProtectionFrees) {
  std::atomic<int> Destroyed{0};
  {
    HazardPointerDomain Domain;
    for (int I = 0; I != 8; ++I)
      Domain.retire(new Tracked(Destroyed));
    Domain.collectAll();
    EXPECT_EQ(Destroyed.load(), 8);
  }
}

TEST(HazardPointerDomain, ProtectedPointerSurvivesScan) {
  std::atomic<int> Destroyed{0};
  HazardPointerDomain Domain;
  std::atomic<Tracked *> Source{new Tracked(Destroyed)};
  {
    HazardPointerDomain::Guard G(Domain);
    Tracked *P = G.protect(0, Source);
    ASSERT_NE(P, nullptr);
    Domain.retire(P);
    Domain.collectAll();
    EXPECT_EQ(Destroyed.load(), 0) << "freed while protected";
  }
  // Guard destroyed: protection gone.
  Domain.collectAll();
  EXPECT_EQ(Destroyed.load(), 1);
}

TEST(HazardPointerDomain, ClearSlotReleasesProtection) {
  std::atomic<int> Destroyed{0};
  HazardPointerDomain Domain;
  std::atomic<Tracked *> Source{new Tracked(Destroyed)};
  HazardPointerDomain::Guard G(Domain);
  Tracked *P = G.protect(1, Source);
  Domain.retire(P);
  Domain.collectAll();
  EXPECT_EQ(Destroyed.load(), 0);
  G.clear(1);
  Domain.collectAll();
  EXPECT_EQ(Destroyed.load(), 1);
}

TEST(HazardPointerDomain, ProtectFollowsConcurrentSwap) {
  // protect() must re-validate: if the source moves mid-protection the
  // returned pointer must match a value that was protected while still
  // reachable. We simulate the swap deterministically by swapping
  // between two objects and checking protect returns one of them.
  std::atomic<int> Destroyed{0};
  HazardPointerDomain Domain;
  Tracked *A = new Tracked(Destroyed);
  Tracked *B = new Tracked(Destroyed);
  std::atomic<Tracked *> Source{A};
  std::atomic<bool> Stop{false};
  std::thread Swapper([&] {
    while (!Stop.load(std::memory_order_acquire)) {
      Source.store(B, std::memory_order_release);
      Source.store(A, std::memory_order_release);
    }
  });
  for (int I = 0; I != 10000; ++I) {
    HazardPointerDomain::Guard G(Domain);
    Tracked *P = G.protect(0, Source);
    EXPECT_TRUE(P == A || P == B);
  }
  Stop.store(true, std::memory_order_release);
  Swapper.join();
  delete A;
  delete B;
}

TEST(HazardPointerDomain, TreiberStackStress) {
  constexpr int NumThreads = 4;
  constexpr int PerThread = 5000;
  HazardPointerDomain Domain;
  std::atomic<long> PopSum{0};
  std::atomic<int> PopCount{0};
  {
    TreiberStack Stack(Domain);
    std::vector<std::thread> Threads;
    for (int T = 0; T != NumThreads; ++T) {
      Threads.emplace_back([&, T] {
        long Local = 0;
        for (int I = 0; I != PerThread; ++I) {
          Stack.push(T * PerThread + I);
          long V;
          if (Stack.pop(V)) {
            Local += V;
            PopCount.fetch_add(1, std::memory_order_relaxed);
          }
        }
        PopSum.fetch_add(Local, std::memory_order_relaxed);
      });
    }
    for (auto &Thread : Threads)
      Thread.join();
    // Every push is eventually popped or still in the stack; pops must
    // never exceed pushes.
    EXPECT_LE(PopCount.load(), NumThreads * PerThread);

    // Drain what is left and check conservation of the total sum.
    long V;
    while (Stack.pop(V)) {
      PopSum.fetch_add(V, std::memory_order_relaxed);
      PopCount.fetch_add(1, std::memory_order_relaxed);
    }
    EXPECT_EQ(PopCount.load(), NumThreads * PerThread);
    const long N = static_cast<long>(NumThreads) * PerThread;
    EXPECT_EQ(PopSum.load(), N * (N - 1) / 2);
  }
  Domain.collectAll();
  EXPECT_EQ(Domain.freedCount(), Domain.retiredCount());
}

TEST(HazardPointerDomain, ThreadExitOrphansAdopted) {
  std::atomic<int> Destroyed{0};
  {
    HazardPointerDomain Domain;
    std::thread Worker([&] {
      for (int I = 0; I != 3; ++I)
        Domain.retire(new Tracked(Destroyed));
    });
    Worker.join();
  }
  EXPECT_EQ(Destroyed.load(), 3);
}

TEST(HazardPointerDomain, ScanWatermarkAmortizesPinnedSurvivors) {
  // Regression for the scan-thrash bug: once a scan kept
  // Threshold-or-more protected pointers, the old ">= threshold"
  // trigger re-ran a full O(threads x slots) scan on EVERY subsequent
  // retire. The watermark (kept + threshold) must keep scans amortized
  // at ~one per threshold retires no matter how much is pinned.
  constexpr size_t Threshold = 4;
  static_assert(Threshold <= HazardPointerDomain::SlotsPerThread,
                "one guard must be able to pin a full threshold");
  std::atomic<int> Destroyed{0};
  HazardPointerDomain Domain(Threshold);

  Tracked *Pinned[Threshold];
  for (auto *&P : Pinned)
    P = new Tracked(Destroyed);

  std::atomic<bool> Ready{false};
  std::atomic<bool> Done{false};
  std::thread Pinner([&] {
    HazardPointerDomain::Guard G(Domain);
    for (unsigned I = 0; I != Threshold; ++I)
      G.set(I, Pinned[I]);
    Ready.store(true, std::memory_order_release);
    while (!Done.load(std::memory_order_acquire))
      std::this_thread::yield();
  });
  while (!Ready.load(std::memory_order_acquire))
    std::this_thread::yield();

  const uint64_t ScansBefore = Domain.scanCount();
  const stats::Snapshot StatsBefore = stats::snapshotAll();
  for (auto *P : Pinned)
    Domain.retire(P);
  constexpr int Junk = 60;
  for (int I = 0; I != Junk; ++I)
    Domain.retire(new Tracked(Destroyed));
  const uint64_t Scans = Domain.scanCount() - ScansBefore;

  // Junk is freed as we go; the pinned objects survive every scan.
  EXPECT_EQ(Destroyed.load(), Junk);
  // Amortized: about one scan per Threshold retires. The broken
  // trigger scanned once per retire (>= Junk scans).
  EXPECT_GE(Scans, 2u);
  EXPECT_LE(Scans, (Threshold + Junk) / Threshold + 2);
  if (stats::Enabled) {
    const stats::Snapshot Delta = stats::snapshotAll().delta(StatsBefore);
    EXPECT_EQ(Delta.get(stats::Counter::HpScans), Scans);
    EXPECT_EQ(Delta.get(stats::Counter::HpRetired),
              static_cast<uint64_t>(Threshold + Junk));
    // Every scan re-kept the four pinned pointers.
    EXPECT_EQ(Delta.get(stats::Counter::HpScanKept), Scans * Threshold);
  }

  Done.store(true, std::memory_order_release);
  Pinner.join();
  Domain.collectAll();
  EXPECT_EQ(Destroyed.load(), Junk + static_cast<int>(Threshold));
}

TEST(HazardPointerDomain, OrphanBacklogDrainedByRetirePressure) {
  // Regression for the orphan-backlog bug: detach() parks an exiting
  // thread's retirees on the orphan list, and nothing ever freed them
  // unless someone called collectAll(). Retire pressure must now adopt
  // (and scan away) the backlog in bounded batches.
  constexpr size_t Threshold = 4;
  constexpr int ChurnThreads = 10;
  constexpr int PerThread = 3; // Below Threshold: no self-scan before exit.
  std::atomic<int> Destroyed{0};
  HazardPointerDomain Domain(Threshold);

  const stats::Snapshot StatsBefore = stats::snapshotAll();
  for (int T = 0; T != ChurnThreads; ++T) {
    std::thread Worker([&] {
      for (int I = 0; I != PerThread; ++I)
        Domain.retire(new Tracked(Destroyed));
    });
    Worker.join();
  }
  constexpr size_t Backlog = ChurnThreads * PerThread;
  EXPECT_EQ(Domain.orphanBacklog(), Backlog);
  EXPECT_EQ(Destroyed.load(), 0);

  // Main-thread retire pressure: every scan trigger adopts up to
  // Threshold orphans, so the backlog drains without collectAll.
  constexpr int Junk = 60;
  for (int I = 0; I != Junk; ++I)
    Domain.retire(new Tracked(Destroyed));
  EXPECT_EQ(Domain.orphanBacklog(), 0u);

  if (stats::Enabled) {
    const stats::Snapshot Delta = stats::snapshotAll().delta(StatsBefore);
    EXPECT_EQ(Delta.get(stats::Counter::HpOrphansAdopted), Backlog);
    // The up/down gauge nets out once everything is adopted.
    EXPECT_EQ(Delta.get(stats::Counter::HpOrphanBacklog), 0u);
  }

  Domain.collectAll();
  EXPECT_EQ(Destroyed.load(), static_cast<int>(Backlog) + Junk);
  EXPECT_EQ(Domain.freedCount(), Domain.retiredCount());
}
