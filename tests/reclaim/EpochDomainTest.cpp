//===- tests/reclaim/EpochDomainTest.cpp - EBR unit tests ----------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "reclaim/EpochDomain.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace vbl;
using namespace vbl::reclaim;

namespace {

/// A payload whose destructor reports into a shared counter.
struct Tracked {
  explicit Tracked(std::atomic<int> &Counter) : Counter(Counter) {}
  ~Tracked() { Counter.fetch_add(1, std::memory_order_relaxed); }
  std::atomic<int> &Counter;
};

} // namespace

TEST(EpochDomain, RetireEventuallyFrees) {
  std::atomic<int> Destroyed{0};
  {
    EpochDomain Domain;
    for (int I = 0; I != 10; ++I)
      Domain.retire(new Tracked(Destroyed));
    Domain.collectAll();
    // No concurrent guards: three advances make everything safe.
    EXPECT_EQ(Destroyed.load(), 10);
    EXPECT_EQ(Domain.freedCount(), 10u);
    EXPECT_EQ(Domain.retiredCount(), 10u);
  }
  EXPECT_EQ(Destroyed.load(), 10);
}

TEST(EpochDomain, DestructorFreesPending) {
  std::atomic<int> Destroyed{0};
  {
    EpochDomain Domain;
    for (int I = 0; I != 5; ++I)
      Domain.retire(new Tracked(Destroyed));
    // No collectAll: destructor must drain.
  }
  EXPECT_EQ(Destroyed.load(), 5);
}

TEST(EpochDomain, ActiveGuardBlocksReclamation) {
  std::atomic<int> Destroyed{0};
  EpochDomain Domain;

  std::atomic<bool> GuardEntered{false};
  std::atomic<bool> ReleaseGuard{false};
  std::thread Reader([&] {
    EpochDomain::Guard G(Domain);
    GuardEntered.store(true, std::memory_order_release);
    while (!ReleaseGuard.load(std::memory_order_acquire))
      std::this_thread::yield();
  });

  while (!GuardEntered.load(std::memory_order_acquire))
    std::this_thread::yield();

  // Retire AFTER the reader announced: its epoch pins the objects.
  for (int I = 0; I != 3; ++I)
    Domain.retire(new Tracked(Destroyed));
  Domain.collectAll();
  Domain.collectAll();
  EXPECT_EQ(Destroyed.load(), 0) << "freed under an active guard";

  ReleaseGuard.store(true, std::memory_order_release);
  Reader.join();
  Domain.collectAll();
  EXPECT_EQ(Destroyed.load(), 3);
}

TEST(EpochDomain, NestedGuardsAreBalanced) {
  EpochDomain Domain;
  std::atomic<int> Destroyed{0};
  {
    EpochDomain::Guard Outer(Domain);
    {
      EpochDomain::Guard Inner(Domain);
      Domain.retire(new Tracked(Destroyed));
    }
    // The inner exit must not have ended the critical section: a
    // collector on another thread still sees this thread active.
    std::thread([&] { Domain.collectAll(); }).join();
    EXPECT_EQ(Destroyed.load(), 0) << "outer guard still pins the epoch";
  }
  Domain.collectAll();
  EXPECT_EQ(Destroyed.load(), 1);
}

TEST(EpochDomainDeathTest, CollectAllUnderGuardAsserts) {
  // collectAll frees the calling thread's own retired nodes as soon as
  // the epoch allows; doing that inside a guard could free memory the
  // caller's open critical section still dereferences. Regression for
  // the footgun where this was silently permitted.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EpochDomain Domain;
  EXPECT_DEATH(
      {
        EpochDomain::Guard G(Domain);
        Domain.collectAll();
      },
      "collectAll");
}

TEST(EpochDomain, EpochAdvancesWhenQuiescent) {
  EpochDomain Domain;
  const uint64_t Before = Domain.globalEpoch();
  std::atomic<int> Destroyed{0};
  Domain.retire(new Tracked(Destroyed));
  Domain.collectAll();
  EXPECT_GT(Domain.globalEpoch(), Before);
}

TEST(EpochDomain, ThreadExitOrphansAreFreedByDomain) {
  std::atomic<int> Destroyed{0};
  {
    EpochDomain Domain;
    std::thread Worker([&] {
      // Retire from a thread that exits before the domain dies; the
      // retire list must be adopted, not leaked.
      for (int I = 0; I != 4; ++I)
        Domain.retire(new Tracked(Destroyed));
    });
    Worker.join();
    Domain.collectAll();
  }
  EXPECT_EQ(Destroyed.load(), 4);
}

TEST(EpochDomain, DomainOutlivedByThreadIsSafe) {
  // A thread attaches to a domain that dies before the thread does: the
  // thread's exit hook must skip the dead domain (DomainRegistry).
  std::atomic<int> Destroyed{0};
  std::atomic<bool> DomainDead{false};
  std::atomic<bool> Attached{false};
  std::thread Worker([&] {
    while (!Attached.load(std::memory_order_acquire))
      std::this_thread::yield();
    while (!DomainDead.load(std::memory_order_acquire))
      std::this_thread::yield();
    // Thread exits here, after the domain is gone.
  });
  {
    EpochDomain Domain;
    Domain.retire(new Tracked(Destroyed));
    Attached.store(true, std::memory_order_release);
    // Give the worker no chance to attach: attach happens in *its* TLS
    // only if it uses the domain — it never does; this test covers the
    // main thread's entry instead, plus domain death before process end.
  }
  DomainDead.store(true, std::memory_order_release);
  Worker.join();
  EXPECT_EQ(Destroyed.load(), 1);
}

TEST(EpochDomain, SlotsAreRecycledAcrossThreadGenerations) {
  // Far more short-lived threads than MaxThreads: exiting threads must
  // hand their slots back or attach would eventually abort.
  EpochDomain Domain;
  std::atomic<int> Destroyed{0};
  for (int Generation = 0; Generation != 40; ++Generation) {
    std::vector<std::thread> Workers;
    for (int T = 0; T != 32; ++T) {
      Workers.emplace_back([&] {
        EpochDomain::Guard G(Domain);
        Domain.retire(new Tracked(Destroyed));
      });
    }
    for (auto &Worker : Workers)
      Worker.join();
  }
  // 40 * 32 = 1280 threads total > MaxThreads (512): recycling worked.
  Domain.collectAll();
  EXPECT_EQ(Domain.retiredCount(), 1280u);
}

TEST(EpochDomain, ConcurrentChurnFreesEverything) {
  constexpr int NumThreads = 4;
  constexpr int PerThread = 2000;
  std::atomic<int> Destroyed{0};
  {
    EpochDomain Domain;
    std::vector<std::thread> Threads;
    for (int T = 0; T != NumThreads; ++T) {
      Threads.emplace_back([&] {
        for (int I = 0; I != PerThread; ++I) {
          EpochDomain::Guard G(Domain);
          Domain.retire(new Tracked(Destroyed));
        }
      });
    }
    for (auto &Thread : Threads)
      Thread.join();
    EXPECT_EQ(Domain.retiredCount(),
              static_cast<uint64_t>(NumThreads) * PerThread);
  }
  EXPECT_EQ(Destroyed.load(), NumThreads * PerThread);
}

TEST(EpochDomain, GuardsNeverSeeFreedMemory) {
  // Readers repeatedly dereference a shared node while writers swap and
  // retire it. Any premature free is very likely to crash or trip the
  // poisoned check under the guard.
  struct Payload {
    std::atomic<long> Poison{12345};
    ~Payload() { Poison.store(-1, std::memory_order_relaxed); }
  };
  EpochDomain Domain;
  std::atomic<Payload *> Shared{new Payload()};
  std::atomic<bool> Stop{false};
  std::atomic<bool> SawPoison{false};

  std::vector<std::thread> Readers;
  for (int T = 0; T != 2; ++T) {
    Readers.emplace_back([&] {
      while (!Stop.load(std::memory_order_acquire)) {
        EpochDomain::Guard G(Domain);
        Payload *P = Shared.load(std::memory_order_acquire);
        if (P->Poison.load(std::memory_order_relaxed) != 12345)
          SawPoison.store(true, std::memory_order_relaxed);
      }
    });
  }
  std::thread Writer([&] {
    for (int I = 0; I != 5000; ++I) {
      Payload *Fresh = new Payload();
      Payload *Old = Shared.exchange(Fresh, std::memory_order_acq_rel);
      EpochDomain::Guard G(Domain);
      Domain.retire(Old);
    }
    Stop.store(true, std::memory_order_release);
  });
  Writer.join();
  for (auto &Reader : Readers)
    Reader.join();
  delete Shared.load();
  EXPECT_FALSE(SawPoison.load());
}
