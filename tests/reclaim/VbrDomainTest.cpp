//===- tests/reclaim/VbrDomainTest.cpp - VBR domain unit tests -----------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Single-threaded (plus one detach) unit coverage of the version-based
/// reclamation domain: birth/retire stamping, the conditional clock
/// bump on a same-epoch turnaround, wrap-aware birth checks across a
/// u64 rollover, abandon-without-stamp semantics, size-class separation
/// of the type-stable free lists, freelist donation on thread detach,
/// raw-retiree parking, and the guard's snapshot/refresh protocol. The
/// concurrent interleaving coverage lives in
/// tests/analysis/VbrReclaimTest.cpp.
///
//===----------------------------------------------------------------------===//

#include "core/VblList.h"
#include "reclaim/VbrDomain.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <new>
#include <thread>
#include <vector>

using namespace vbl;
using reclaim::VbrDomain;

namespace {

struct SmallPayload {
  uint64_t Word = 0;
};

/// Large enough to land in a different pool size class than
/// SmallPayload (header 64 + 320 -> 512-byte class vs 64 + 8 -> 128).
struct LargePayload {
  uint64_t Words[40] = {};
};

TEST(VbrDomainTest, FreshBlocksCarryBirthZero) {
  VbrDomain D;
  EXPECT_EQ(D.clock(), 1u);
  bool Fresh = false;
  void *Mem = D.allocBlockFor<SmallPayload>(Fresh);
  EXPECT_TRUE(Fresh);
  auto *N = ::new (Mem) SmallPayload();
  // A first incarnation is never stale: every version accepts it, even
  // one below the current clock.
  EXPECT_TRUE(D.validAt(N, 0));
  EXPECT_TRUE(D.validAt(N, D.clock()));
  EXPECT_EQ(D.reusedCount(), 0u);
  D.disposeNode(N);
}

TEST(VbrDomainTest, RetireMakesBlockImmediatelyReusable) {
  VbrDomain D;
  bool Fresh = false;
  auto *N = ::new (D.allocBlockFor<SmallPayload>(Fresh)) SmallPayload();
  const uint64_t V0 = D.clock();
  D.retireNode(N);
  EXPECT_EQ(D.retiredCount(), 1u);
  // No grace period: the very next same-class allocation revives the
  // block in place.
  bool Fresh2 = true;
  void *Again = D.allocBlockFor<SmallPayload>(Fresh2);
  EXPECT_FALSE(Fresh2);
  EXPECT_EQ(Again, static_cast<void *>(N));
  EXPECT_EQ(D.reusedCount(), 1u);
  EXPECT_EQ(D.freedCount(), 1u);
  // The retire and the revival straddled the same clock value, so the
  // revival had to bump it: the new birth rejects every version taken
  // before the retire and accepts the current one.
  EXPECT_GT(D.clock(), V0);
  EXPECT_FALSE(D.validAt(Again, V0));
  EXPECT_TRUE(D.validAt(Again, D.clock()));
  D.disposeNode(std::launder(static_cast<SmallPayload *>(Again)));
}

TEST(VbrDomainTest, ClockRolloverKeepsBirthChecksSound) {
  VbrDomain D;
  const uint64_t Max = ~uint64_t{0};
  D.setClockForTest(Max);
  bool Fresh = false;
  auto *N = ::new (D.allocBlockFor<SmallPayload>(Fresh)) SmallPayload();
  D.retireNode(N); // Retire stamped at UINT64_MAX.
  void *Again = D.allocBlockFor<SmallPayload>(Fresh);
  EXPECT_FALSE(Fresh);
  // The same-epoch turnaround bumped the clock across the wrap; the
  // numerically tiny birth is logically AFTER the huge pre-wrap
  // version (signed-distance compare), so stale readers still reject.
  EXPECT_LT(D.clock(), Max);
  EXPECT_FALSE(D.validAt(Again, Max));
  EXPECT_TRUE(D.validAt(Again, D.clock()));
  D.disposeNode(std::launder(static_cast<SmallPayload *>(Again)));
}

TEST(VbrDomainTest, AbandonReturnsBlockWithoutRetireStamp) {
  VbrDomain D;
  bool Fresh = false;
  auto *N = ::new (D.allocBlockFor<SmallPayload>(Fresh)) SmallPayload();
  D.retireNode(N);
  void *Revived = D.allocBlockFor<SmallPayload>(Fresh);
  ASSERT_FALSE(Fresh);
  const uint64_t RetiresBefore = D.retiredCount();
  // A speculative insert that lost its race returns the never-published
  // block: no new retire stamp (the old one still bounds every reader
  // that could hold the memory) and no retire accounting.
  D.abandonNode(std::launder(static_cast<SmallPayload *>(Revived)));
  EXPECT_EQ(D.retiredCount(), RetiresBefore);
  void *Again = D.allocBlockFor<SmallPayload>(Fresh);
  EXPECT_FALSE(Fresh);
  EXPECT_EQ(Again, Revived);
  EXPECT_TRUE(D.validAt(Again, D.clock()));
  D.disposeNode(std::launder(static_cast<SmallPayload *>(Again)));
}

TEST(VbrDomainTest, SizeClassesKeepFreeListsApart) {
  VbrDomain D;
  bool Fresh = false;
  auto *Small = ::new (D.allocBlockFor<SmallPayload>(Fresh)) SmallPayload();
  D.retireNode(Small);
  // A different size class must not revive the small block.
  bool FreshLarge = false;
  void *Large = D.allocBlockFor<LargePayload>(FreshLarge);
  EXPECT_TRUE(FreshLarge);
  EXPECT_NE(Large, static_cast<void *>(Small));
  EXPECT_EQ(D.reusedCount(), 0u);
  D.disposeNode(::new (Large) LargePayload());
}

TEST(VbrDomainTest, DetachedThreadDonatesItsFreeLists) {
  VbrDomain D;
  std::thread([&D] {
    bool Fresh = false;
    std::vector<SmallPayload *> Nodes;
    for (int I = 0; I < 16; ++I)
      Nodes.push_back(::new (D.allocBlockFor<SmallPayload>(Fresh))
                          SmallPayload());
    for (SmallPayload *N : Nodes)
      D.retireNode(N);
  }).join();
  // The worker's local free list was donated to the shared overflow on
  // detach; this thread's first allocation refills from it.
  bool Fresh = true;
  void *Mem = D.allocBlockFor<SmallPayload>(Fresh);
  EXPECT_FALSE(Fresh);
  EXPECT_GE(D.reusedCount(), 1u);
  D.disposeNode(std::launder(static_cast<SmallPayload *>(Mem)));
}

TEST(VbrDomainTest, RetireRawParksUntilTeardown) {
  static int Freed = 0;
  Freed = 0;
  {
    VbrDomain D;
    int *P = new int(42);
    D.retireRaw(P, +[](void *Q) {
      delete static_cast<int *>(Q);
      ++Freed;
    });
    // Raw memory carries no epoch header, so it is parked, not reused.
    D.collectAll();
    EXPECT_EQ(Freed, 0);
  }
  EXPECT_EQ(Freed, 1);
}

TEST(VbrDomainTest, GuardSnapshotsAndRefreshesTheClock) {
  VbrDomain D;
  VbrDomain::Guard G(D);
  EXPECT_EQ(G.version(), D.clock());
  D.setClockForTest(100);
  EXPECT_NE(G.version(), 100u);
  EXPECT_EQ(G.refresh(), 100u);
  EXPECT_EQ(G.version(), 100u);
}

TEST(VbrDomainTest, VblListRevivesThroughTheDomain) {
  VblList<reclaim::VbrDomain> List;
  for (SetKey K = 0; K < 64; ++K) {
    EXPECT_TRUE(List.insert(K));
    EXPECT_TRUE(List.remove(K));
  }
  // The single-threaded toggle loop must run almost entirely on revived
  // blocks: each remove retires a node the next insert reuses.
  EXPECT_GT(List.reclaimDomain().reusedCount(), 32u);
  EXPECT_TRUE(List.checkInvariants());
  EXPECT_EQ(List.sizeSlow(), 0u);
}

} // namespace
