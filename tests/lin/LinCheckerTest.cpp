//===- tests/lin/LinCheckerTest.cpp - Linearizability checker tests ------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "lin/LinChecker.h"

#include <gtest/gtest.h>

using namespace vbl;
using namespace vbl::lin;

namespace {

/// Shorthand for building histories: op on key K over [Invoke,Response].
CompletedOp op(SetOp Kind, SetKey Key, bool Result, uint64_t Invoke,
               uint64_t Response, uint32_t Thread = 0) {
  return {Kind, Key, Result, Invoke, Response, Thread};
}

} // namespace

TEST(LinChecker, EmptyHistoryIsLinearizable) {
  EXPECT_TRUE(checkSetHistory({}, {}).Ok);
  EXPECT_TRUE(checkSingleKeyHistory({}, false));
  EXPECT_TRUE(checkSingleKeyHistory({}, true));
}

TEST(LinChecker, SequentialCorrectHistory) {
  std::vector<CompletedOp> H = {
      op(SetOp::Insert, 1, true, 0, 1),
      op(SetOp::Contains, 1, true, 2, 3),
      op(SetOp::Remove, 1, true, 4, 5),
      op(SetOp::Contains, 1, false, 6, 7),
  };
  EXPECT_TRUE(checkSetHistory(H, {}).Ok);
}

TEST(LinChecker, SequentialWrongResultRejected) {
  // contains(1)=true before any insert is impossible.
  std::vector<CompletedOp> H = {
      op(SetOp::Contains, 1, true, 0, 1),
      op(SetOp::Insert, 1, true, 2, 3),
  };
  const LinResult R = checkSetHistory(H, {});
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.ViolatingKey, 1);
  EXPECT_FALSE(R.Message.empty());
}

TEST(LinChecker, InitialKeysRespected) {
  std::vector<CompletedOp> H = {
      op(SetOp::Contains, 5, true, 0, 1),
      op(SetOp::Insert, 5, false, 2, 3),
      op(SetOp::Remove, 5, true, 4, 5),
  };
  EXPECT_TRUE(checkSetHistory(H, {5}).Ok);
  EXPECT_FALSE(checkSetHistory(H, {}).Ok);
}

TEST(LinChecker, ConcurrentOpsMayReorder) {
  // contains(1)=true overlaps insert(1): linearize contains after.
  std::vector<CompletedOp> H = {
      op(SetOp::Contains, 1, true, 0, 10, 0),
      op(SetOp::Insert, 1, true, 1, 2, 1),
  };
  EXPECT_TRUE(checkSetHistory(H, {}).Ok);
}

TEST(LinChecker, RealTimeOrderIsBinding) {
  // contains(1)=true strictly BEFORE insert(1): no reordering allowed.
  std::vector<CompletedOp> H = {
      op(SetOp::Contains, 1, true, 0, 1, 0),
      op(SetOp::Insert, 1, true, 2, 3, 1),
  };
  EXPECT_FALSE(checkSetHistory(H, {}).Ok);
}

TEST(LinChecker, LostUpdateDetected) {
  // Two concurrent successful inserts of the same key: only one can
  // linearize first; the second must return false. Both true = lost
  // update (the paper's §2.2 example).
  std::vector<CompletedOp> H = {
      op(SetOp::Insert, 2, true, 0, 10, 0),
      op(SetOp::Insert, 2, true, 1, 9, 1),
  };
  EXPECT_FALSE(checkSetHistory(H, {}).Ok);
}

TEST(LinChecker, ConcurrentInsertsOneFails) {
  std::vector<CompletedOp> H = {
      op(SetOp::Insert, 2, true, 0, 10, 0),
      op(SetOp::Insert, 2, false, 1, 9, 1),
  };
  EXPECT_TRUE(checkSetHistory(H, {}).Ok);
}

TEST(LinChecker, ConcurrentRemoveInsertInterleaving) {
  // remove(3)=true, insert(3)=true concurrent. With 3 initially
  // present, the only order is remove-then-insert, so a later contains
  // must see true.
  std::vector<CompletedOp> H = {
      op(SetOp::Remove, 3, true, 0, 10, 0),
      op(SetOp::Insert, 3, true, 1, 9, 1),
      op(SetOp::Contains, 3, true, 20, 21, 0),
  };
  EXPECT_TRUE(checkSetHistory(H, {3}).Ok);
  H[2] = op(SetOp::Contains, 3, false, 20, 21, 0);
  EXPECT_FALSE(checkSetHistory(H, {3}).Ok);

  // With 3 initially absent the only order is insert-then-remove, so a
  // later contains must see false.
  H[2] = op(SetOp::Contains, 3, false, 20, 21, 0);
  EXPECT_TRUE(checkSetHistory(H, {}).Ok);
  H[2] = op(SetOp::Contains, 3, true, 20, 21, 0);
  EXPECT_FALSE(checkSetHistory(H, {}).Ok);
}

TEST(LinChecker, DoubleSuccessfulRemoveRejected) {
  std::vector<CompletedOp> H = {
      op(SetOp::Remove, 4, true, 0, 10, 0),
      op(SetOp::Remove, 4, true, 1, 9, 1),
  };
  EXPECT_FALSE(checkSetHistory(H, {4}).Ok);
}

TEST(LinChecker, KeysCheckedIndependently) {
  // Key 1 is fine; key 2 is violated. The checker must name key 2.
  std::vector<CompletedOp> H = {
      op(SetOp::Insert, 1, true, 0, 1),
      op(SetOp::Contains, 2, true, 2, 3),
  };
  const LinResult R = checkSetHistory(H, {});
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.ViolatingKey, 2);
}

TEST(LinChecker, ContainsFalseDuringPresenceWindowNeedsOverlap) {
  // Key present throughout [0,100]; a contains(5)=false fully inside
  // that window with no overlapping remove must be rejected.
  std::vector<CompletedOp> H = {
      op(SetOp::Insert, 5, true, 0, 1, 0),
      op(SetOp::Contains, 5, false, 10, 11, 1),
      op(SetOp::Remove, 5, true, 20, 21, 0),
  };
  EXPECT_FALSE(checkSetHistory(H, {}).Ok);

  // But if the contains overlaps the remove, it may linearize after it.
  H[1] = op(SetOp::Contains, 5, false, 10, 25, 1);
  EXPECT_TRUE(checkSetHistory(H, {}).Ok);
}

TEST(LinChecker, LongToggleChain) {
  // Alternating sequential insert/remove with matching results: valid
  // and must complete fast (exercises the sliding-window memoization).
  std::vector<CompletedOp> H;
  uint64_t T = 0;
  for (int I = 0; I != 2000; ++I) {
    H.push_back(op(SetOp::Insert, 9, true, T, T + 1));
    T += 2;
    H.push_back(op(SetOp::Remove, 9, true, T, T + 1));
    T += 2;
  }
  EXPECT_TRUE(checkSetHistory(H, {}).Ok);
}

TEST(LinChecker, WideConcurrencyWithinWindow) {
  // 16 concurrent inserts of one absent key, exactly one reporting
  // true: linearizable, and exercises a wide frontier.
  std::vector<CompletedOp> H;
  for (uint32_t T = 0; T != 16; ++T)
    H.push_back(op(SetOp::Insert, 7, T == 9, 0, 100, T));
  EXPECT_TRUE(checkSetHistory(H, {}).Ok);

  // Two winners: not linearizable.
  H[0].Result = true;
  EXPECT_FALSE(checkSetHistory(H, {}).Ok);
}

TEST(LinChecker, UnorderedInputIsSorted) {
  std::vector<CompletedOp> H = {
      op(SetOp::Remove, 1, true, 4, 5),
      op(SetOp::Insert, 1, true, 0, 1),
  };
  EXPECT_TRUE(checkSetHistory(H, {}).Ok);
}

TEST(LinChecker, DecomposeScansCoversWindowOnly) {
  // One scan over [2, 6] of universe {1, 2, 4, 6, 9} reporting {2, 6}:
  // one Contains observation per in-window universe key, true iff
  // reported, all carrying the scan's interval and thread.
  CompletedScan Scan;
  Scan.Lo = 2;
  Scan.Hi = 6;
  Scan.Keys = {2, 6};
  Scan.Invoke = 10;
  Scan.Response = 20;
  Scan.Thread = 3;
  const std::vector<CompletedOp> Obs =
      decomposeScans({Scan}, {1, 2, 4, 6, 9});
  ASSERT_EQ(Obs.size(), 3u);
  for (const CompletedOp &O : Obs) {
    EXPECT_EQ(O.Op, SetOp::Contains);
    EXPECT_EQ(O.Invoke, 10u);
    EXPECT_EQ(O.Response, 20u);
    EXPECT_EQ(O.Thread, 3u);
    EXPECT_EQ(O.Result, O.Key == 2 || O.Key == 6);
  }
}

TEST(LinChecker, ScanObservationsLinearizable) {
  // insert(5) during [0, 10]; a scan over [1, 9] during [5, 15] that
  // reported 5 linearizes (scan after insert). A scan that reported
  // the key while strictly preceding the insert cannot.
  std::vector<CompletedOp> H = {op(SetOp::Insert, 5, true, 0, 10)};
  CompletedScan Scan;
  Scan.Lo = 1;
  Scan.Hi = 9;
  Scan.Keys = {5};
  Scan.Invoke = 5;
  Scan.Response = 15;
  Scan.Thread = 1;
  for (CompletedOp &O : decomposeScans({Scan}, {5}))
    H.push_back(O);
  EXPECT_TRUE(checkSetHistory(H, {}).Ok);

  H.clear();
  H.push_back(op(SetOp::Insert, 5, true, 20, 30));
  Scan.Invoke = 5;
  Scan.Response = 15; // Entirely before the insert, yet saw the key.
  for (CompletedOp &O : decomposeScans({Scan}, {5}))
    H.push_back(O);
  EXPECT_FALSE(checkSetHistory(H, {}).Ok);
}

TEST(LinChecker, ScanTornWindowRejected) {
  // Initial {2, 6}. One thread removes 2 then inserts back 6's
  // neighbor-window state... simplest torn case: a scan over [1, 9]
  // that reports {6} but omits 2 while NO operation on 2 overlaps it:
  // the omission of 2 cannot be justified at any point in the scan.
  std::vector<CompletedOp> H;
  CompletedScan Scan;
  Scan.Lo = 1;
  Scan.Hi = 9;
  Scan.Keys = {6};
  Scan.Invoke = 40;
  Scan.Response = 50;
  Scan.Thread = 0;
  for (CompletedOp &O : decomposeScans({Scan}, {2, 6}))
    H.push_back(O);
  EXPECT_FALSE(checkSetHistory(H, {2, 6}).Ok);

  // With a concurrent remove(2) the same scan result linearizes.
  H.push_back(op(SetOp::Remove, 2, true, 35, 55, 1));
  EXPECT_TRUE(checkSetHistory(H, {2, 6}).Ok);
}

TEST(LinChecker, RawRangeQueryRecordRejected) {
  // A RangeQuery record that bypassed decomposeScans must fail the
  // check loudly rather than be misinterpreted.
  std::vector<CompletedOp> H = {op(SetOp::RangeQuery, 3, true, 0, 1)};
  EXPECT_FALSE(checkSetHistory(H, {3}).Ok);
}
