//===- tests/lin/HistoryStressTest.cpp - End-to-end lincheck -------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Integration: run every registered algorithm under a contended random
/// workload while recording the real-time history, then decide
/// linearizability with the checker. This is the strongest dynamic
/// correctness evidence in the repo (Theorem 1 exercised end-to-end).
///
//===----------------------------------------------------------------------===//

#include "lin/LinChecker.h"

#include "lists/SetInterface.h"
#include "support/Barrier.h"
#include "support/Random.h"
#include "support/Timing.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

using namespace vbl;
using namespace vbl::lin;

namespace {

/// Divides stress volumes by $VBL_STRESS_DIV (sanitizer runs set it:
/// TSan's shadow state for hundreds of thousands of distinct atomics
/// exceeds small-host memory at full volume).
int scaledOps(int Base) {
  if (const char *Div = std::getenv("VBL_STRESS_DIV")) {
    const int Factor = std::atoi(Div);
    if (Factor > 1)
      return Base / Factor;
  }
  return Base;
}

class HistoryStressTest : public ::testing::TestWithParam<std::string> {};

void runAndCheck(const std::string &Algo, unsigned NumThreads,
                 SetKey KeyRange, int OpsPerThread, uint64_t Seed,
                 unsigned ScanPercent = 0) {
  auto Set = makeSet(Algo);
  ASSERT_NE(Set, nullptr);

  // Prefill deterministically: even keys present.
  std::vector<SetKey> Initial;
  for (SetKey Key = 0; Key < KeyRange; Key += 2) {
    ASSERT_TRUE(Set->insert(Key));
    Initial.push_back(Key);
  }

  HistoryRecorder Recorder(NumThreads);
  // Scans are recorded per thread (no synchronization, like ThreadLog)
  // and lowered to per-key Contains observations after the join.
  std::vector<std::vector<CompletedScan>> ScanLogs(NumThreads);
  SpinBarrier Barrier(NumThreads);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      auto &Log = Recorder.threadLog(T);
      Xoshiro256 Rng(Seed + T);
      Barrier.arriveAndWait();
      for (int I = 0; I != OpsPerThread; ++I) {
        const SetKey Key =
            static_cast<SetKey>(Rng.nextBounded(KeyRange));
        if (ScanPercent && Rng.nextBounded(100) < ScanPercent) {
          const SetKey Hi = Key + static_cast<SetKey>(Rng.nextBounded(
                                      static_cast<uint64_t>(KeyRange) / 2 + 1));
          CompletedScan Scan;
          Scan.Lo = Key;
          Scan.Hi = Hi;
          Scan.Thread = T;
          Scan.Invoke = nowNanos();
          Set->rangeQuery(Key, Hi, Scan.Keys);
          Scan.Response = nowNanos();
          ScanLogs[T].push_back(std::move(Scan));
          continue;
        }
        switch (Rng.nextBounded(3)) {
        case 0:
          recordOp(
              Log, SetOp::Insert, Key,
              [&] { return Set->insert(Key); }, &nowNanos);
          break;
        case 1:
          recordOp(
              Log, SetOp::Remove, Key,
              [&] { return Set->remove(Key); }, &nowNanos);
          break;
        default:
          recordOp(
              Log, SetOp::Contains, Key,
              [&] { return Set->contains(Key); }, &nowNanos);
          break;
        }
      }
    });
  }
  for (auto &Thread : Threads)
    Thread.join();

  std::vector<CompletedOp> History = Recorder.merged();
  if (ScanPercent) {
    std::vector<CompletedScan> AllScans;
    size_t ScanCount = 0;
    for (std::vector<CompletedScan> &Mine : ScanLogs) {
      ScanCount += Mine.size();
      for (CompletedScan &Scan : Mine)
        AllScans.push_back(std::move(Scan));
    }
    EXPECT_GT(ScanCount, 0u) << Algo << ": scan mix produced no scans";
    std::vector<SetKey> Universe;
    for (SetKey Key = 0; Key != KeyRange; ++Key)
      Universe.push_back(Key);
    for (CompletedOp &Op : decomposeScans(AllScans, Universe))
      History.push_back(std::move(Op));
  }
  const LinResult Result = checkSetHistory(History, Initial);
  EXPECT_TRUE(Result.Ok) << Algo << ": " << Result.Message;

  // The final snapshot must extend the history linearizably too: append
  // one contains per key and re-check (the sigma-bar(v) idea of §2.2).
  std::vector<CompletedOp> Extended = Recorder.merged();
  const uint64_t End = nowNanos();
  const std::vector<SetKey> Final = Set->snapshot();
  std::vector<bool> Present(static_cast<size_t>(KeyRange), false);
  for (SetKey Key : Final)
    Present[static_cast<size_t>(Key)] = true;
  for (SetKey Key = 0; Key != KeyRange; ++Key)
    Extended.push_back({SetOp::Contains, Key,
                        Present[static_cast<size_t>(Key)], End + 1,
                        End + 2, 0});
  const LinResult ExtResult = checkSetHistory(Extended, Initial);
  EXPECT_TRUE(ExtResult.Ok) << Algo << " extended: " << ExtResult.Message;
}

} // namespace

TEST_P(HistoryStressTest, ContendedSmallRange) {
  runAndCheck(GetParam(), 4, /*KeyRange=*/6, scaledOps(4000),
              /*Seed=*/11);
}

TEST_P(HistoryStressTest, ModerateRange) {
  runAndCheck(GetParam(), 4, /*KeyRange=*/64, scaledOps(4000),
              /*Seed=*/23);
}

TEST_P(HistoryStressTest, SingleKeyWarfare) {
  runAndCheck(GetParam(), 8, /*KeyRange=*/2, scaledOps(1500),
              /*Seed=*/37);
}

// Scans mixed with updates: every reported (and omitted) key of every
// concurrent rangeQuery must be justified at some point inside the
// scan's interval — the widened-interval contract, decided by lowering
// scans to per-key Contains observations (decomposeScans).
TEST_P(HistoryStressTest, ScanMixLinearizable) {
  runAndCheck(GetParam(), 4, /*KeyRange=*/32, scaledOps(2500),
              /*Seed=*/53, /*ScanPercent=*/20);
}

TEST_P(HistoryStressTest, ScanHeavySmallRange) {
  runAndCheck(GetParam(), 4, /*KeyRange=*/8, scaledOps(1500),
              /*Seed=*/71, /*ScanPercent=*/50);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, HistoryStressTest,
    ::testing::ValuesIn(registeredSetNames()),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      std::string Name = Info.param;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });
