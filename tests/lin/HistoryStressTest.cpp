//===- tests/lin/HistoryStressTest.cpp - End-to-end lincheck -------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Integration: run every registered algorithm under a contended random
/// workload while recording the real-time history, then decide
/// linearizability with the checker. This is the strongest dynamic
/// correctness evidence in the repo (Theorem 1 exercised end-to-end).
///
//===----------------------------------------------------------------------===//

#include "lin/LinChecker.h"

#include "lists/SetInterface.h"
#include "support/Barrier.h"
#include "support/Random.h"
#include "support/Timing.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

using namespace vbl;
using namespace vbl::lin;

namespace {

/// Divides stress volumes by $VBL_STRESS_DIV (sanitizer runs set it:
/// TSan's shadow state for hundreds of thousands of distinct atomics
/// exceeds small-host memory at full volume).
int scaledOps(int Base) {
  if (const char *Div = std::getenv("VBL_STRESS_DIV")) {
    const int Factor = std::atoi(Div);
    if (Factor > 1)
      return Base / Factor;
  }
  return Base;
}

class HistoryStressTest : public ::testing::TestWithParam<std::string> {};

void runAndCheck(const std::string &Algo, unsigned NumThreads,
                 SetKey KeyRange, int OpsPerThread, uint64_t Seed) {
  auto Set = makeSet(Algo);
  ASSERT_NE(Set, nullptr);

  // Prefill deterministically: even keys present.
  std::vector<SetKey> Initial;
  for (SetKey Key = 0; Key < KeyRange; Key += 2) {
    ASSERT_TRUE(Set->insert(Key));
    Initial.push_back(Key);
  }

  HistoryRecorder Recorder(NumThreads);
  SpinBarrier Barrier(NumThreads);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      auto &Log = Recorder.threadLog(T);
      Xoshiro256 Rng(Seed + T);
      Barrier.arriveAndWait();
      for (int I = 0; I != OpsPerThread; ++I) {
        const SetKey Key =
            static_cast<SetKey>(Rng.nextBounded(KeyRange));
        switch (Rng.nextBounded(3)) {
        case 0:
          recordOp(
              Log, SetOp::Insert, Key,
              [&] { return Set->insert(Key); }, &nowNanos);
          break;
        case 1:
          recordOp(
              Log, SetOp::Remove, Key,
              [&] { return Set->remove(Key); }, &nowNanos);
          break;
        default:
          recordOp(
              Log, SetOp::Contains, Key,
              [&] { return Set->contains(Key); }, &nowNanos);
          break;
        }
      }
    });
  }
  for (auto &Thread : Threads)
    Thread.join();

  const LinResult Result = checkSetHistory(Recorder.merged(), Initial);
  EXPECT_TRUE(Result.Ok) << Algo << ": " << Result.Message;

  // The final snapshot must extend the history linearizably too: append
  // one contains per key and re-check (the sigma-bar(v) idea of §2.2).
  std::vector<CompletedOp> Extended = Recorder.merged();
  const uint64_t End = nowNanos();
  const std::vector<SetKey> Final = Set->snapshot();
  std::vector<bool> Present(static_cast<size_t>(KeyRange), false);
  for (SetKey Key : Final)
    Present[static_cast<size_t>(Key)] = true;
  for (SetKey Key = 0; Key != KeyRange; ++Key)
    Extended.push_back({SetOp::Contains, Key,
                        Present[static_cast<size_t>(Key)], End + 1,
                        End + 2, 0});
  const LinResult ExtResult = checkSetHistory(Extended, Initial);
  EXPECT_TRUE(ExtResult.Ok) << Algo << " extended: " << ExtResult.Message;
}

} // namespace

TEST_P(HistoryStressTest, ContendedSmallRange) {
  runAndCheck(GetParam(), 4, /*KeyRange=*/6, scaledOps(4000),
              /*Seed=*/11);
}

TEST_P(HistoryStressTest, ModerateRange) {
  runAndCheck(GetParam(), 4, /*KeyRange=*/64, scaledOps(4000),
              /*Seed=*/23);
}

TEST_P(HistoryStressTest, SingleKeyWarfare) {
  runAndCheck(GetParam(), 8, /*KeyRange=*/2, scaledOps(1500),
              /*Seed=*/37);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, HistoryStressTest,
    ::testing::ValuesIn(registeredSetNames()),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      std::string Name = Info.param;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });
