//===- tests/maps/HashSetAnalysisTest.cpp - Hash set is race-free --------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Drives the split-ordered hash set (both substrates) under
/// AnalyzedPolicy through the hash scenario corpus and asserts the
/// happens-before detector finds ZERO races in every explored
/// interleaving. The sets are built with InitialBuckets=1 and
/// MaxLoadFactor=1 so episode inserts trigger bucket-index growth and
/// lazy dummy splicing concurrently with the other thread — the
/// resize-vs-insert pairing is explored, not just steady-state ops.
///
/// The default episode cap keeps PR runs fast (the corpus's value is
/// breadth; synchronization bugs show up within the first few hundred
/// interleavings). Nightly CI raises it via VBL_EXPLORE_EPISODES to
/// walk a much deeper prefix of each interleaving tree.
///
//===----------------------------------------------------------------------===//

#include "maps/SplitOrderedHashSet.h"

#include "core/VblList.h"
#include "lists/HarrisMichaelList.h"
#include "reclaim/LeakyDomain.h"
#include "sched/AnalyzedPolicy.h"
#include "sched/InterleavingExplorer.h"

#include "sched/ScenarioCorpus.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

using namespace vbl;
using namespace vbl::sched;

namespace {

size_t episodeCap() {
  if (const char *Env = std::getenv("VBL_EXPLORE_EPISODES"))
    if (long Cap = std::atol(Env); Cap > 0)
      return static_cast<size_t>(Cap);
  return 300;
}

template <class HashT> void expectRaceFreeHashCorpus(const char *SetName) {
  const size_t Cap = episodeCap();
  for (const Scenario &S : hashSetScenarios()) {
    InterleavingExplorer Explorer(factoryForWith(S, [] {
      return std::make_shared<HashT>(/*InitialBuckets=*/1,
                                     /*MaxLoadFactor=*/1);
    }));
    size_t Episodes = 0;
    size_t Accesses = 0;
    Explorer.exploreAll(
        [&](const EpisodeResult &Result) {
          ++Episodes;
          Accesses += Result.Raw.size();
          for (const analysis::RaceReport &Report : Result.Races)
            ADD_FAILURE() << SetName << " / " << S.Name << ": "
                          << Report.toString();
        },
        std::min(S.MaxEpisodes, Cap));
    EXPECT_GT(Episodes, 0u) << SetName << " / " << S.Name;
    EXPECT_GT(Accesses, 0u) << SetName << " / " << S.Name
                            << ": no accesses logged — is the policy wired?";
  }
}

TEST(HashSetAnalysisTest, HarrisMichaelBackendIsRaceFree) {
  expectRaceFreeHashCorpus<maps::SplitOrderedHashSet<
      HarrisMichaelList<reclaim::LeakyDomain, AnalyzedPolicy>>>(
      "SplitOrderedHashSet<HarrisMichael>");
}

TEST(HashSetAnalysisTest, VblBackendIsRaceFree) {
  expectRaceFreeHashCorpus<maps::SplitOrderedHashSet<
      VblList<reclaim::LeakyDomain, AnalyzedPolicy>>>(
      "SplitOrderedHashSet<Vbl>");
}

/// Same drill over the resize corpus, against tables with shrink armed
/// (GrowLoadFactor=1, ShrinkDivisor=2, MinBuckets=1): episode removes
/// cross the shrink watermark, so halving index swaps interleave with
/// the other thread's traversal in-episode.
template <class HashT>
void expectRaceFreeResizeCorpus(const char *SetName) {
  const size_t Cap = episodeCap();
  for (const Scenario &S : hashResizeScenarios()) {
    InterleavingExplorer Explorer(factoryForWith(S, [] {
      HashSetConfig C;
      C.InitialBuckets = 1;
      C.GrowLoadFactor = 1;
      C.MinBuckets = 1;
      C.ShrinkDivisor = 2;
      C.EnableShrink = true;
      return std::make_shared<HashT>(C);
    }));
    size_t Episodes = 0;
    size_t Accesses = 0;
    Explorer.exploreAll(
        [&](const EpisodeResult &Result) {
          ++Episodes;
          Accesses += Result.Raw.size();
          for (const analysis::RaceReport &Report : Result.Races)
            ADD_FAILURE() << SetName << " / " << S.Name << ": "
                          << Report.toString();
        },
        std::min(S.MaxEpisodes, Cap));
    EXPECT_GT(Episodes, 0u) << SetName << " / " << S.Name;
    EXPECT_GT(Accesses, 0u) << SetName << " / " << S.Name
                            << ": no accesses logged — is the policy wired?";
  }
}

TEST(HashSetAnalysisTest, HarrisMichaelResizeIsRaceFree) {
  expectRaceFreeResizeCorpus<maps::SplitOrderedHashSet<
      HarrisMichaelList<reclaim::LeakyDomain, AnalyzedPolicy>>>(
      "SplitOrderedHashSet<HarrisMichael,resize>");
}

TEST(HashSetAnalysisTest, VblResizeIsRaceFree) {
  expectRaceFreeResizeCorpus<maps::SplitOrderedHashSet<
      VblList<reclaim::LeakyDomain, AnalyzedPolicy>>>(
      "SplitOrderedHashSet<Vbl,resize>");
}

} // namespace
