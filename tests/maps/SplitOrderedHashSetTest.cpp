//===- tests/maps/SplitOrderedHashSetTest.cpp - Split-ordered hash set ---===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Functional coverage for the split-ordered hash set over both
/// substrates: the key-encoding algebra, sequential and differential
/// behaviour, lazy bucket splitting under growth, registry integration,
/// multi-threaded stress with invariant checks, and a recorded-history
/// linearizability check through src/lin.
///
//===----------------------------------------------------------------------===//

#include "maps/SplitOrderedHashSet.h"

#include "core/VblList.h"
#include "lin/LinChecker.h"
#include "lists/HarrisMichaelList.h"
#include "lists/HarrisMichaelListHp.h"
#include "lists/SetInterface.h"
#include "reclaim/LeakyDomain.h"
#include "reclaim/VbrDomain.h"
#include "stats/Stats.h"
#include "support/Barrier.h"
#include "support/Random.h"
#include "support/Timing.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

using namespace vbl;

namespace {

using HmHash = maps::SplitOrderedHashSet<HarrisMichaelList<>>;
using VblHash = maps::SplitOrderedHashSet<VblList<>>;
using HpHash = maps::SplitOrderedHashSet<HarrisMichaelListHp>;
using VbrHash = maps::SplitOrderedHashSet<VblList<reclaim::VbrDomain>>;

/// Shrink-enabled config used by the churn tests: tiny table, load
/// factor 1 (aggressive growth), minimal hysteresis so the drain phase
/// walks the index back down.
HashSetConfig churnConfig() {
  HashSetConfig C;
  C.InitialBuckets = 1;
  C.GrowLoadFactor = 1;
  C.MinBuckets = 1;
  C.ShrinkDivisor = 2;
  C.EnableShrink = true;
  return C;
}

//===----------------------------------------------------------------===//
// Encoding algebra
//===----------------------------------------------------------------===//

TEST(SplitOrderTest, EncodingRoundTrips) {
  Xoshiro256 Rng(7);
  for (int I = 0; I != 2000; ++I) {
    const auto Key = static_cast<SetKey>(Rng.next() & so::HashKeyMask);
    ASSERT_TRUE(isHashKey(Key));
    const SetKey SoKey = so::regularSoKey(Key);
    ASSERT_TRUE(so::isRegularSoKey(SoKey));
    ASSERT_TRUE(isUserKey(SoKey));
    ASSERT_EQ(so::decodeRegular(SoKey), Key);
  }
}

TEST(SplitOrderTest, RegularKeysAreInjective) {
  // mix62 is a bijection and reverse64 is an involution, so distinct
  // keys get distinct split-order keys; spot-check a dense range (the
  // worst case for a multiplicative hash).
  std::set<SetKey> Images;
  for (SetKey Key = 0; Key != 4096; ++Key)
    Images.insert(so::regularSoKey(Key));
  EXPECT_EQ(Images.size(), 4096u);
}

TEST(SplitOrderTest, DummyPrecedesItsBucketContents) {
  // At every table size S, bucket b's dummy key sorts before every
  // regular key hashing to b, and after the dummy of every bucket that
  // is a prefix-ancestor of b — that is the split-ordering invariant
  // that makes lazy recursive initialization correct.
  Xoshiro256 Rng(11);
  for (uint64_t Size : {1u, 2u, 4u, 8u, 64u, 1024u}) {
    for (int I = 0; I != 500; ++I) {
      const auto Key = static_cast<SetKey>(Rng.next() & so::HashKeyMask);
      const uint64_t Bucket = so::mix62(static_cast<uint64_t>(Key)) &
                              (Size - 1);
      EXPECT_LT(so::dummySoKey(Bucket), so::regularSoKey(Key));
      if (Bucket != 0) {
        EXPECT_LT(so::dummySoKey(so::parentBucket(Bucket)),
                  so::dummySoKey(Bucket));
      }
    }
  }
}

TEST(SplitOrderTest, SplitRedistributesWithoutReordering) {
  // Doubling S to 2S splits bucket b into b and b + S. Keys that move
  // to b + S must all sort after the new dummy; keys that stay must
  // sort before it.
  Xoshiro256 Rng(13);
  for (uint64_t Size : {1u, 2u, 8u, 256u}) {
    for (int I = 0; I != 500; ++I) {
      const auto Key = static_cast<SetKey>(Rng.next() & so::HashKeyMask);
      const uint64_t Mixed = so::mix62(static_cast<uint64_t>(Key));
      const uint64_t Old = Mixed & (Size - 1);
      const uint64_t New = Mixed & (2 * Size - 1);
      const SetKey ChildDummy = so::dummySoKey(Old + Size);
      if (New == Old)
        EXPECT_LT(so::regularSoKey(Key), ChildDummy);
      else
        EXPECT_GT(so::regularSoKey(Key), ChildDummy);
    }
  }
}

//===----------------------------------------------------------------===//
// Sequential behaviour, both substrates
//===----------------------------------------------------------------===//

template <class HashT> void basicOps() {
  HashT Set;
  EXPECT_FALSE(Set.contains(42));
  EXPECT_TRUE(Set.insert(42));
  EXPECT_FALSE(Set.insert(42));
  EXPECT_TRUE(Set.contains(42));
  EXPECT_TRUE(Set.insert(0));
  EXPECT_TRUE(Set.insert(MaxHashKey - 1));
  EXPECT_EQ(Set.snapshot(), (std::vector<SetKey>{0, 42, MaxHashKey - 1}));
  EXPECT_TRUE(Set.remove(42));
  EXPECT_FALSE(Set.remove(42));
  EXPECT_FALSE(Set.contains(42));
  EXPECT_EQ(Set.sizeFast(), 2);
  EXPECT_TRUE(Set.checkInvariants());
}

TEST(SplitOrderedHashSetTest, BasicOpsHarrisMichael) { basicOps<HmHash>(); }
TEST(SplitOrderedHashSetTest, BasicOpsVbl) { basicOps<VblHash>(); }
TEST(SplitOrderedHashSetTest, BasicOpsHarrisMichaelHp) { basicOps<HpHash>(); }

template <class HashT> void growthSplitsBuckets() {
  // Tiny table + load factor 1: every few inserts double the index.
  HashT Set(/*InitialBuckets=*/1, /*MaxLoadFactor=*/1);
  EXPECT_EQ(Set.bucketCount(), 1u);
  constexpr SetKey N = 300;
  for (SetKey Key = 0; Key != N; ++Key)
    ASSERT_TRUE(Set.insert(Key * 1315423911));
  EXPECT_GE(Set.bucketCount(), 256u);
  for (SetKey Key = 0; Key != N; ++Key)
    ASSERT_TRUE(Set.contains(Key * 1315423911)) << Key;
  EXPECT_EQ(Set.sizeFast(), N);
  EXPECT_TRUE(Set.checkInvariants());
  // Dummies survive removals; the structure stays consistent empty.
  for (SetKey Key = 0; Key != N; ++Key)
    ASSERT_TRUE(Set.remove(Key * 1315423911));
  EXPECT_EQ(Set.sizeFast(), 0);
  EXPECT_TRUE(Set.snapshot().empty());
  EXPECT_TRUE(Set.checkInvariants());
}

TEST(SplitOrderedHashSetTest, GrowthSplitsBucketsHarrisMichael) {
  growthSplitsBuckets<HmHash>();
}
TEST(SplitOrderedHashSetTest, GrowthSplitsBucketsVbl) {
  growthSplitsBuckets<VblHash>();
}
TEST(SplitOrderedHashSetTest, GrowthSplitsBucketsHarrisMichaelHp) {
  growthSplitsBuckets<HpHash>();
}

template <class HashT> void differentialVsStdSet(uint64_t Seed) {
  HashT Set(/*InitialBuckets=*/2, /*MaxLoadFactor=*/2);
  std::set<SetKey> Model;
  Xoshiro256 Rng(Seed);
  for (int I = 0; I != 20000; ++I) {
    const auto Key = static_cast<SetKey>(Rng.nextBounded(512));
    switch (Rng.nextBounded(3)) {
    case 0:
      ASSERT_EQ(Set.insert(Key), Model.insert(Key).second);
      break;
    case 1:
      ASSERT_EQ(Set.remove(Key), Model.erase(Key) != 0);
      break;
    default:
      ASSERT_EQ(Set.contains(Key), Model.count(Key) != 0);
      break;
    }
  }
  EXPECT_EQ(Set.snapshot(),
            std::vector<SetKey>(Model.begin(), Model.end()));
  EXPECT_EQ(Set.sizeFast(), static_cast<int64_t>(Model.size()));
  EXPECT_TRUE(Set.checkInvariants());
}

TEST(SplitOrderedHashSetTest, DifferentialHarrisMichael) {
  differentialVsStdSet<HmHash>(101);
}
TEST(SplitOrderedHashSetTest, DifferentialVbl) {
  differentialVsStdSet<VblHash>(202);
}
TEST(SplitOrderedHashSetTest, DifferentialHarrisMichaelHp) {
  differentialVsStdSet<HpHash>(303);
}

/// Shrink-enabled differential: same model check, but the set breathes —
/// the drain phases exercise maybeShrink against live lookups.
template <class HashT> void differentialWithShrink(uint64_t Seed) {
  HashT Set(churnConfig());
  std::set<SetKey> Model;
  Xoshiro256 Rng(Seed);
  for (int Phase = 0; Phase != 6; ++Phase) {
    // Even phases lean insert-heavy (grow), odd phases remove-heavy
    // (shrink); lookups run throughout.
    const bool Draining = Phase & 1;
    for (int I = 0; I != 4000; ++I) {
      const auto Key = static_cast<SetKey>(Rng.nextBounded(512));
      switch (Rng.nextBounded(4)) {
      case 0:
      case 1:
      case 2:
        if (Draining)
          ASSERT_EQ(Set.remove(Key), Model.erase(Key) != 0);
        else
          ASSERT_EQ(Set.insert(Key), Model.insert(Key).second);
        break;
      default:
        ASSERT_EQ(Set.contains(Key), Model.count(Key) != 0);
        break;
      }
    }
    ASSERT_TRUE(Set.checkInvariants());
  }
  EXPECT_EQ(Set.snapshot(),
            std::vector<SetKey>(Model.begin(), Model.end()));
}

TEST(SplitOrderedHashSetTest, DifferentialShrinkHarrisMichael) {
  differentialWithShrink<HmHash>(404);
}
TEST(SplitOrderedHashSetTest, DifferentialShrinkVbl) {
  differentialWithShrink<VblHash>(505);
}

//===----------------------------------------------------------------===//
// Registry integration
//===----------------------------------------------------------------===//

TEST(SplitOrderedHashSetTest, RegistryExposesHashSetsSeparately) {
  const auto HashNames = registeredHashSetNames();
  ASSERT_EQ(HashNames.size(), 8u);
  const auto ListNames = registeredSetNames();
  for (const std::string &Name : HashNames) {
    // Resolvable by name, but not enumerated with the full-domain lists
    // (generic list tests feed keys outside [0, 2^62)).
    EXPECT_EQ(std::count(ListNames.begin(), ListNames.end(), Name), 0)
        << Name;
    auto Set = makeSet(Name);
    ASSERT_NE(Set, nullptr) << Name;
    EXPECT_EQ(Set->name(), Name);
    EXPECT_TRUE(Set->insert(7));
    EXPECT_TRUE(Set->contains(7));
    EXPECT_TRUE(Set->remove(7));
    EXPECT_TRUE(Set->checkInvariants());
  }
}

//===----------------------------------------------------------------===//
// Config validation: every rejection has a stable name
//===----------------------------------------------------------------===//

TEST(HashSetConfigTest, ValidateNamesEveryRejection) {
  HashSetConfig C;
  EXPECT_EQ(validateHashSetConfig(C), HashSetConfigError::None);

  C = HashSetConfig{};
  C.InitialBuckets = 12;
  EXPECT_EQ(validateHashSetConfig(C),
            HashSetConfigError::InitialNotPowerOfTwo);
  C.InitialBuckets = 0;
  EXPECT_EQ(validateHashSetConfig(C),
            HashSetConfigError::InitialNotPowerOfTwo);

  C = HashSetConfig{};
  C.MinBuckets = 3;
  EXPECT_EQ(validateHashSetConfig(C), HashSetConfigError::MinNotPowerOfTwo);

  C = HashSetConfig{};
  C.MaxBuckets = 100;
  EXPECT_EQ(validateHashSetConfig(C), HashSetConfigError::MaxNotPowerOfTwo);

  C = HashSetConfig{};
  C.MinBuckets = 64;
  C.InitialBuckets = 16;
  EXPECT_EQ(validateHashSetConfig(C), HashSetConfigError::BoundsInverted);
  C = HashSetConfig{};
  C.InitialBuckets = size_t(1) << 23;
  EXPECT_EQ(validateHashSetConfig(C), HashSetConfigError::BoundsInverted);

  C = HashSetConfig{};
  C.GrowLoadFactor = 0;
  EXPECT_EQ(validateHashSetConfig(C), HashSetConfigError::ZeroLoadFactor);

  C = HashSetConfig{};
  C.EnableShrink = true;
  C.ShrinkDivisor = 1;
  EXPECT_EQ(validateHashSetConfig(C),
            HashSetConfigError::ShrinkDivisorTooSmall);
  // Without shrink the divisor is ignored.
  C.EnableShrink = false;
  EXPECT_EQ(validateHashSetConfig(C), HashSetConfigError::None);

  EXPECT_STREQ(hashSetConfigErrorName(HashSetConfigError::None), "None");
  EXPECT_STREQ(
      hashSetConfigErrorName(HashSetConfigError::InitialNotPowerOfTwo),
      "InitialNotPowerOfTwo");
  EXPECT_STREQ(
      hashSetConfigErrorName(HashSetConfigError::ShrinkDivisorTooSmall),
      "ShrinkDivisorTooSmall");
}

//===----------------------------------------------------------------===//
// Shrink churn: the index follows the population back down, and every
// displaced segment flows through the substrate's reclamation domain.
//===----------------------------------------------------------------===//

/// Grows a shrink-enabled set to >= 256 buckets, drains it, and pulses
/// a little churn so the final halvings run; asserts the index returns
/// to the MinBuckets low watermark while every key stays correct.
/// Returns counter deltas so each domain's test can assert on segment
/// retirement its own way.
template <class HashT> stats::Snapshot growDrainChurn(HashT &Set) {
  const stats::Snapshot Before = stats::snapshotAll();
  constexpr SetKey N = 300;
  for (SetKey Key = 0; Key != N; ++Key)
    EXPECT_TRUE(Set.insert(Key * 1315423911));
  EXPECT_GE(Set.bucketCount(), 256u);
  for (SetKey Key = 0; Key != N; ++Key)
    EXPECT_TRUE(Set.remove(Key * 1315423911));
  for (int I = 0; I != 32; ++I) {
    EXPECT_TRUE(Set.insert(7));
    EXPECT_TRUE(Set.remove(7));
  }
  EXPECT_EQ(Set.bucketCount(), Set.config().MinBuckets);
  EXPECT_GE(Set.maxBucketCountEver(), 256u);
  EXPECT_EQ(Set.sizeFast(), 0);
  EXPECT_TRUE(Set.checkInvariants());
  return stats::snapshotAll().delta(Before);
}

TEST(SplitOrderedHashSetTest, ShrinkChurnEbr) {
  HmHash Set(churnConfig());
  const stats::Snapshot Delta = growDrainChurn(Set);
  if (stats::Enabled) {
    EXPECT_GT(Delta.get(stats::Counter::MapResizeGrows), 0u);
    EXPECT_GT(Delta.get(stats::Counter::MapResizeShrinks), 0u);
    EXPECT_GT(Delta.get(stats::Counter::MapResizeSegmentsRetired), 0u);
  }
  // Every displaced index went through the epoch domain; with all
  // guards dropped a collect frees the backlog.
  auto &Domain = Set.reclaimDomain();
  EXPECT_GT(Domain.retiredCount(), 0u);
  Domain.collectAll();
  EXPECT_GT(Domain.freedCount(), 0u);
}

TEST(SplitOrderedHashSetTest, ShrinkChurnHp) {
  HpHash Set(churnConfig());
  const stats::Snapshot Delta = growDrainChurn(Set);
  if (stats::Enabled) {
    EXPECT_GT(Delta.get(stats::Counter::MapResizeShrinks), 0u);
  }
  // Hazard domain: no thread holds a protection now, so a full scan
  // frees every displaced segment.
  auto &Domain = Set.reclaimDomain();
  EXPECT_GT(Domain.retiredCount(), 0u);
  Domain.collectAll();
  EXPECT_GT(Domain.freedCount(), 0u);
}

TEST(SplitOrderedHashSetTest, ShrinkChurnVbr) {
  VbrHash Set(churnConfig());
  const stats::Snapshot Delta = growDrainChurn(Set);
  if (stats::Enabled) {
    EXPECT_GT(Delta.get(stats::Counter::MapResizeShrinks), 0u);
  }
  // VBR parks raw (non-pool) retirees until domain teardown; the
  // displaced indexes are accounted for, not lost.
  EXPECT_GT(Set.reclaimDomain().retiredCount(), 0u);
}

TEST(SplitOrderedHashSetTest, ShrinkChurnLeakyBounded) {
  using LeakyHash =
      maps::SplitOrderedHashSet<HarrisMichaelList<reclaim::LeakyDomain>>;
  LeakyHash Set(churnConfig());
  const stats::Snapshot Delta = growDrainChurn(Set);
  // The leaky domain never frees, so boundedness is the whole claim:
  // hysteresis keeps resize churn proportional to the log of the peak
  // table size plus the number of drain pulses — not to the op count.
  if (stats::Enabled) {
    const uint64_t Resizes = Delta.get(stats::Counter::MapResizes);
    EXPECT_GT(Resizes, 0u);
    EXPECT_LE(Resizes, 64u);
  }
}

template <class HashT> void concurrentStress() {
  // Force aggressive concurrent splitting: tiny initial table, load
  // factor 1, keys spread across the whole domain.
  HashT Set(/*InitialBuckets=*/1, /*MaxLoadFactor=*/1);
  constexpr unsigned Threads = 4;
  constexpr int OpsPerThread = 8000;
  constexpr uint64_t Range = 1024;
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&, T] {
      Xoshiro256 Rng(T + 1);
      Barrier.arriveAndWait();
      for (int I = 0; I != OpsPerThread; ++I) {
        const auto Key =
            static_cast<SetKey>(Rng.nextBounded(Range) * 0x9E3779B9ULL);
        switch (Rng.nextBounded(4)) {
        case 0:
          Set.insert(Key);
          break;
        case 1:
          Set.remove(Key);
          break;
        default:
          Set.contains(Key);
          break;
        }
      }
    });
  for (auto &Worker : Workers)
    Worker.join();
  EXPECT_TRUE(Set.checkInvariants());
  EXPECT_EQ(Set.sizeFast(), static_cast<int64_t>(Set.sizeSlow()));
  EXPECT_GT(Set.bucketCount(), 1u);
}

TEST(SplitOrderedHashSetTest, ConcurrentStressHarrisMichael) {
  concurrentStress<HmHash>();
}
TEST(SplitOrderedHashSetTest, ConcurrentStressVbl) {
  concurrentStress<VblHash>();
}
TEST(SplitOrderedHashSetTest, ConcurrentStressHarrisMichaelHp) {
  concurrentStress<HpHash>();
}

/// Phased concurrent churn against a shrink-enabled table: all threads
/// fill, then all drain, repeated — the table breathes under real
/// parallelism while lookups race each swing.
template <class HashT> void concurrentShrinkStress() {
  HashT Set(churnConfig());
  constexpr unsigned Threads = 4;
  constexpr int Phases = 4;
  constexpr uint64_t Range = 512;
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&, T] {
      Xoshiro256 Rng(T + 31);
      for (int Phase = 0; Phase != Phases; ++Phase) {
        Barrier.arriveAndWait();
        const bool Draining = Phase & 1;
        for (int I = 0; I != 3000; ++I) {
          const auto Key =
              static_cast<SetKey>(Rng.nextBounded(Range) * 0x9E3779B9ULL);
          if (Rng.nextBounded(4) == 0)
            Set.contains(Key);
          else if (Draining)
            Set.remove(Key);
          else
            Set.insert(Key);
        }
      }
    });
  for (auto &Worker : Workers)
    Worker.join();
  EXPECT_TRUE(Set.checkInvariants());
  EXPECT_EQ(Set.sizeFast(), static_cast<int64_t>(Set.sizeSlow()));
  EXPECT_GT(Set.maxBucketCountEver(), Set.config().MinBuckets);
}

TEST(SplitOrderedHashSetTest, ConcurrentShrinkStressHarrisMichael) {
  concurrentShrinkStress<HmHash>();
}
TEST(SplitOrderedHashSetTest, ConcurrentShrinkStressVbl) {
  concurrentShrinkStress<VblHash>();
}
TEST(SplitOrderedHashSetTest, ConcurrentShrinkStressHarrisMichaelHp) {
  concurrentShrinkStress<HpHash>();
}
TEST(SplitOrderedHashSetTest, ConcurrentShrinkStressVbr) {
  concurrentShrinkStress<VbrHash>();
}

//===----------------------------------------------------------------===//
// Linearizability (src/lin) on a recorded real-time history
//===----------------------------------------------------------------===//

void checkLinearizable(const std::string &Algo) {
  auto Set = makeSet(Algo);
  ASSERT_NE(Set, nullptr);
  std::vector<SetKey> Initial;
  for (SetKey Key = 0; Key < 8; Key += 2) {
    Set->insert(Key);
    Initial.push_back(Key);
  }
  constexpr unsigned Threads = 4;
  lin::HistoryRecorder Recorder(Threads);
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&, T] {
      auto &Log = Recorder.threadLog(T);
      Xoshiro256 Rng(T + 17);
      Barrier.arriveAndWait();
      for (int I = 0; I != 4000; ++I) {
        const auto Key = static_cast<SetKey>(Rng.nextBounded(8));
        switch (Rng.nextBounded(3)) {
        case 0:
          lin::recordOp(
              Log, SetOp::Insert, Key,
              [&] { return Set->insert(Key); }, &nowNanos);
          break;
        case 1:
          lin::recordOp(
              Log, SetOp::Remove, Key,
              [&] { return Set->remove(Key); }, &nowNanos);
          break;
        default:
          lin::recordOp(
              Log, SetOp::Contains, Key,
              [&] { return Set->contains(Key); }, &nowNanos);
          break;
        }
      }
    });
  for (auto &Worker : Workers)
    Worker.join();
  const lin::LinResult Result =
      lin::checkSetHistory(Recorder.merged(), Initial);
  EXPECT_TRUE(Result.Ok) << Algo << ": " << Result.Message;
}

TEST(SplitOrderedHashSetTest, LinearizableHarrisMichael) {
  checkLinearizable("so-hash-hm");
}
TEST(SplitOrderedHashSetTest, LinearizableVbl) {
  checkLinearizable("so-hash-vbl");
}
TEST(SplitOrderedHashSetTest, LinearizableHarrisMichaelHp) {
  checkLinearizable("so-hash-hm-hp");
}
TEST(SplitOrderedHashSetTest, LinearizableHarrisMichaelResize) {
  checkLinearizable("so-hash-hm-resize");
}
TEST(SplitOrderedHashSetTest, LinearizableVblResize) {
  checkLinearizable("so-hash-vbl-resize");
}

} // namespace
