//===- tests/analysis/PoolRecycleTest.cpp - Recycle vs traversal ---------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// The node pool's sharpest hazard: a block retired by one operation
/// can be recycled into a brand-new node at the SAME address while
/// another thread's traversal still holds the episode open. The
/// happens-before chain that makes this safe is
///   reader guard exit (release announce)
///     -> collector scan (reads the announce)
///     -> epoch advance -> grace-period free -> pool reuse,
/// every link policy-mediated and therefore visible to the race
/// detector. These tests drive that exact shape — remove(k);
/// collectAll(); insert(k') against a concurrent contains(k) — through
/// the deterministic scheduler with EBR-backed, pool-backed lists under
/// AnalyzedPolicy, and assert zero races in every explored
/// interleaving. A counter asserts non-vacuity: at least one episode
/// really freed (hence recycled) the removed node.
///
/// The existing scenario corpus also runs against the EBR domain here
/// (CleanListsTest uses LeakyDomain, which never frees), so the pooled
/// allocation path is exercised under every corpus workload too.
///
//===----------------------------------------------------------------------===//

#include "core/VblList.h"
#include "lists/HarrisMichaelList.h"
#include "reclaim/EpochDomain.h"
#include "sched/AnalyzedPolicy.h"
#include "sched/InterleavingExplorer.h"

#include "sched/ScenarioCorpus.h"

#include <gtest/gtest.h>

#include <atomic>

using namespace vbl;
using namespace vbl::sched;

namespace {

using AnalyzedEpochDomain = reclaim::BasicEpochDomain<AnalyzedPolicy>;

/// remove(4) + collectAll + insert(7) on one thread, contains(4) on the
/// other. collectAll runs between ops with no guard held; its three
/// collection rounds advance the epoch past the retirement's grace
/// period whenever the reader is not pinning it, so the victim's block
/// is recycled into the insert within the same episode.
template <class ListT>
void exploreRecycleVsTraversal(const char *ListName, size_t MaxEpisodes) {
  std::atomic<size_t> FreedEpisodes{0};
  EpisodeFactory Factory = [&FreedEpisodes]() -> Episode {
    auto List = std::make_shared<ListT>();
    List->insert(4);
    Episode Ep;
    Ep.HeadNode = List->headNode();
    Ep.InitialChain = List->nodeChain();
    Ep.Holder = List;
    Ep.Bodies.push_back(std::function<void()>([List] {
      tracedOp(SetOp::Contains, 4, [&] { return List->contains(4); });
    }));
    Ep.Bodies.push_back(std::function<void()>([List, &FreedEpisodes] {
      tracedOp(SetOp::Remove, 4, [&] { return List->remove(4); });
      List->reclaimDomain().collectAll();
      tracedOp(SetOp::Insert, 7, [&] { return List->insert(7); });
      if (List->reclaimDomain().freedCount() > 0)
        FreedEpisodes.fetch_add(1, std::memory_order_relaxed);
    }));
    return Ep;
  };

  InterleavingExplorer Explorer(Factory);
  size_t Episodes = 0;
  Explorer.exploreAll(
      [&](const EpisodeResult &Result) {
        ++Episodes;
        EXPECT_FALSE(Result.Deadlocked) << ListName;
        for (const analysis::RaceReport &Report : Result.Races)
          ADD_FAILURE() << ListName << " recycle-vs-traversal: "
                        << Report.toString();
      },
      MaxEpisodes);
  EXPECT_GT(Episodes, 0u) << ListName;
  // Vacuity guard: the scenario must actually reach the recycle, not
  // just explore interleavings where the epoch never advanced.
  EXPECT_GT(FreedEpisodes.load(std::memory_order_relaxed), 0u)
      << ListName << ": no episode freed the removed node";
}

TEST(PoolRecycleTest, VblListRecycleVsTraversalRaceFree) {
  exploreRecycleVsTraversal<VblList<AnalyzedEpochDomain, AnalyzedPolicy>>(
      "VblList", 2000);
}

TEST(PoolRecycleTest, HarrisMichaelRecycleVsTraversalRaceFree) {
  exploreRecycleVsTraversal<
      HarrisMichaelList<AnalyzedEpochDomain, AnalyzedPolicy>>(
      "HarrisMichaelList", 2000);
}

/// The shared corpus against the real EBR domain: guard announcements,
/// retirement stamps and pool transfers are all traced events here, so
/// the detector checks the full production configuration (CleanListsTest
/// covers the same workloads with the leaky domain).
template <class ListT>
void expectCorpusRaceFree(const char *ListName, size_t EpisodeCap) {
  for (const Scenario &S : scenarios()) {
    InterleavingExplorer Explorer(factoryFor<ListT>(S));
    size_t Episodes = 0;
    Explorer.exploreAll(
        [&](const EpisodeResult &Result) {
          ++Episodes;
          for (const analysis::RaceReport &Report : Result.Races)
            ADD_FAILURE() << ListName << " / " << S.Name << ": "
                          << Report.toString();
        },
        std::min(S.MaxEpisodes, EpisodeCap));
    EXPECT_GT(Episodes, 0u) << ListName << " / " << S.Name;
  }
}

TEST(PoolRecycleTest, VblListEpochDomainCorpusRaceFree) {
  expectCorpusRaceFree<VblList<AnalyzedEpochDomain, AnalyzedPolicy>>(
      "VblList+EBR", 200);
}

TEST(PoolRecycleTest, HarrisMichaelEpochDomainCorpusRaceFree) {
  expectCorpusRaceFree<
      HarrisMichaelList<AnalyzedEpochDomain, AnalyzedPolicy>>(
      "HarrisMichaelList+EBR", 200);
}

} // namespace
