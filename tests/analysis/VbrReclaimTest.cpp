//===- tests/analysis/VbrReclaimTest.cpp - VBR under the scheduler -------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Version-based reclamation's sharpest hazards, driven through the
/// deterministic scheduler:
///
///  - recycle-vs-traversal: a block retired by one operation is revived
///    IN THE SAME EPISODE — no grace period, no collect call — while a
///    concurrent traversal holds certified pointers into it. The
///    birth-epoch checks must reject every stale read, and the whole
///    interleaving tree must come back race-free under AnalyzedPolicy
///    (the revival's release stores synchronize with the reader's
///    acquire loads through the stamped birth).
///  - stamp-vs-validate: an updater's lock validators re-certify the
///    (prev, curr) placement while another thread retires and revives
///    those very blocks.
///  - version-clock rollover: the same scenarios with the clock planted
///    at UINT64_MAX, so every retire/revive crosses the u64 wrap and
///    the signed-distance birth compare is what keeps readers sound.
///  - flow oracle: the shared corpus plus the VBR scenarios run with the
///    per-step flow-invariant checker (F1-F7) over TracedPolicy lists
///    backed by the VBR domain — the keyset/flow clauses must hold in
///    every interleaving despite immediate in-place reuse.
///
/// Vacuity guards assert the episodes really revive blocks (domain
/// reuse counters), not merely explore interleavings where every
/// allocation stayed fresh.
///
//===----------------------------------------------------------------------===//

#include "core/VblChunkList.h"
#include "core/VblList.h"
#include "lists/LazyList.h"
#include "reclaim/VbrDomain.h"
#include "sched/AnalyzedPolicy.h"
#include "sched/InterleavingExplorer.h"
#include "stats/Stats.h"

#include "sched/ScenarioCorpus.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

using namespace vbl;
using namespace vbl::sched;

namespace {

using AnalyzedVbrDomain = reclaim::BasicVbrDomain<AnalyzedPolicy>;
using TracedVbrDomain = reclaim::BasicVbrDomain<TracedPolicy>;

/// Every exploration in this file deepens under VBL_EXPLORE_EPISODES
/// (the nightly raises it past the PR budgets); \p Default is the
/// PR-tier cap.
size_t episodeCapOr(size_t Default) {
  if (const char *Env = std::getenv("VBL_EXPLORE_EPISODES"))
    if (long Cap = std::atol(Env); Cap > 0)
      return static_cast<size_t>(Cap);
  return Default;
}

size_t episodeCap() { return episodeCapOr(120); }

/// remove(4); insert(7) against a concurrent contains(4). Unlike the
/// EBR variant (PoolRecycleTest) there is no collectAll between the
/// ops: retirement alone makes the block reusable, so the insert
/// revives the victim whenever the scheduler runs it after the remove.
/// \p StartClock lets the rollover tests plant the version clock.
template <class ListT>
void exploreRecycleVsTraversal(const char *ListName, size_t MaxEpisodes,
                               uint64_t StartClock = 0) {
  std::atomic<size_t> ReusedEpisodes{0};
  EpisodeFactory Factory = [&ReusedEpisodes, StartClock]() -> Episode {
    auto List = std::make_shared<ListT>();
    if (StartClock)
      List->reclaimDomain().setClockForTest(StartClock);
    List->insert(4);
    Episode Ep;
    Ep.HeadNode = List->headNode();
    Ep.InitialChain = List->nodeChain();
    Ep.Holder = List;
    Ep.Bodies.push_back(std::function<void()>([List] {
      tracedOp(SetOp::Contains, 4, [&] { return List->contains(4); });
    }));
    Ep.Bodies.push_back(std::function<void()>([List, &ReusedEpisodes] {
      tracedOp(SetOp::Remove, 4, [&] { return List->remove(4); });
      tracedOp(SetOp::Insert, 7, [&] { return List->insert(7); });
      if (List->reclaimDomain().reusedCount() > 0)
        ReusedEpisodes.fetch_add(1, std::memory_order_relaxed);
    }));
    return Ep;
  };

  InterleavingExplorer Explorer(Factory);
  size_t Episodes = 0;
  Explorer.exploreAll(
      [&](const EpisodeResult &Result) {
        ++Episodes;
        EXPECT_FALSE(Result.Deadlocked) << ListName;
        for (const analysis::RaceReport &Report : Result.Races)
          ADD_FAILURE() << ListName << " recycle-vs-traversal: "
                        << Report.toString();
      },
      episodeCapOr(MaxEpisodes));
  EXPECT_GT(Episodes, 0u) << ListName;
  // Vacuity: the insert must really have revived the removed node's
  // block in at least one explored episode.
  EXPECT_GT(ReusedEpisodes.load(std::memory_order_relaxed), 0u)
      << ListName << ": no episode revived the removed node";
}

TEST(VbrReclaimTest, VblListRecycleVsTraversalRaceFree) {
  exploreRecycleVsTraversal<VblList<AnalyzedVbrDomain, AnalyzedPolicy>>(
      "VblList+VBR", 2000);
}

TEST(VbrReclaimTest, LazyListRecycleVsTraversalRaceFree) {
  exploreRecycleVsTraversal<LazyList<AnalyzedVbrDomain, AnalyzedPolicy>>(
      "LazyList+VBR", 2000);
}

TEST(VbrReclaimTest, ChunkListRecycleVsTraversalRaceFree) {
  // K=1: remove(4) empties the chunk and unlinks it; insert(7) revives
  // the retired chunk via the splice path — maximal structural churn.
  exploreRecycleVsTraversal<
      VblChunkList<1, AnalyzedVbrDomain, AnalyzedPolicy>>(
      "VblChunkList<1>+VBR", 1500);
}

TEST(VbrReclaimTest, VblListRolloverRecycleRaceFree) {
  exploreRecycleVsTraversal<VblList<AnalyzedVbrDomain, AnalyzedPolicy>>(
      "VblList+VBR@wrap", 1500, ~uint64_t{0});
}

TEST(VbrReclaimTest, LazyListRolloverRecycleRaceFree) {
  exploreRecycleVsTraversal<LazyList<AnalyzedVbrDomain, AnalyzedPolicy>>(
      "LazyList+VBR@wrap", 1500, ~uint64_t{0});
}

/// The VBR scenario set (stamp-vs-validate and friends) plus the shared
/// corpus, race-checked against the real VBR domain: guard snapshots,
/// birth stamps, clock bumps and freelist transfers are all traced
/// events, so the detector audits the full production protocol.
template <class ListT>
void expectCorpusRaceFree(const char *ListName,
                          const std::vector<Scenario> &Scenarios,
                          size_t EpisodeCap) {
  for (const Scenario &S : Scenarios) {
    InterleavingExplorer Explorer(factoryFor<ListT>(S));
    size_t Episodes = 0;
    Explorer.exploreAll(
        [&](const EpisodeResult &Result) {
          ++Episodes;
          EXPECT_FALSE(Result.Deadlocked) << ListName << " / " << S.Name;
          for (const analysis::RaceReport &Report : Result.Races)
            ADD_FAILURE() << ListName << " / " << S.Name << ": "
                          << Report.toString();
        },
        std::min(S.MaxEpisodes, episodeCapOr(EpisodeCap)));
    EXPECT_GT(Episodes, 0u) << ListName << " / " << S.Name;
  }
}

TEST(VbrReclaimTest, VblListVbrScenariosRaceFree) {
  expectCorpusRaceFree<VblList<AnalyzedVbrDomain, AnalyzedPolicy>>(
      "VblList+VBR", vbrScenarios(), 200);
}

TEST(VbrReclaimTest, LazyListVbrScenariosRaceFree) {
  expectCorpusRaceFree<LazyList<AnalyzedVbrDomain, AnalyzedPolicy>>(
      "LazyList+VBR", vbrScenarios(), 200);
}

TEST(VbrReclaimTest, ChunkListVbrScenariosRaceFree) {
  expectCorpusRaceFree<VblChunkList<1, AnalyzedVbrDomain, AnalyzedPolicy>>(
      "VblChunkList<1>+VBR", vbrScenarios(), 120);
}

TEST(VbrReclaimTest, VblListSharedCorpusRaceFree) {
  expectCorpusRaceFree<VblList<AnalyzedVbrDomain, AnalyzedPolicy>>(
      "VblList+VBR", scenarios(), 120);
}

TEST(VbrReclaimTest, LazyListSharedCorpusRaceFree) {
  expectCorpusRaceFree<LazyList<AnalyzedVbrDomain, AnalyzedPolicy>>(
      "LazyList+VBR", scenarios(), 120);
}

/// Flow oracle over VBR-backed lists: the per-step keyset/flow clauses
/// (F1-F7) recomputed after every scheduler step must stay clean even
/// though unlinked blocks are revived — possibly relinked at a new key
/// — inside the same episode. The checker tracks nodes by address and
/// deliberately restarts tracking when an address reappears, so
/// immediate reuse is within its model.
template <class ListT>
void expectFlowClean(const char *ListName,
                     const std::vector<Scenario> &Scenarios) {
  const size_t Cap = episodeCap();
  const stats::Snapshot Before = stats::snapshotAll();
  for (const Scenario &S : Scenarios) {
    InterleavingExplorer Explorer(factoryFor<ListT>(S));
    size_t Episodes = 0;
    Explorer.exploreAll(
        [&](const EpisodeResult &Result) {
          ++Episodes;
          for (const analysis::FlowReport &Report : Result.FlowViolations)
            ADD_FAILURE() << ListName << " / " << S.Name << ": "
                          << Report.toString();
        },
        std::min(S.MaxEpisodes, Cap));
    EXPECT_GT(Episodes, 0u) << ListName << " / " << S.Name;
  }
  if (stats::Enabled) {
    const stats::Snapshot Delta = stats::snapshotAll().delta(Before);
    EXPECT_GT(Delta.get(stats::Counter::AnalysisFlowChecks), 0u)
        << ListName << ": no flow snapshots taken";
  }
}

TEST(VbrReclaimTest, VblListVbrIsFlowClean) {
  expectFlowClean<VblList<TracedVbrDomain, TracedPolicy>>("VblList+VBR",
                                                          vbrScenarios());
}

TEST(VbrReclaimTest, LazyListVbrIsFlowClean) {
  expectFlowClean<LazyList<TracedVbrDomain, TracedPolicy>>("LazyList+VBR",
                                                           vbrScenarios());
}

TEST(VbrReclaimTest, ChunkListVbrIsFlowClean) {
  expectFlowClean<VblChunkList<1, TracedVbrDomain, TracedPolicy>>(
      "VblChunkList<1>+VBR", vbrScenarios());
}

TEST(VbrReclaimTest, VblListVbrSharedCorpusFlowClean) {
  expectFlowClean<VblList<TracedVbrDomain, TracedPolicy>>("VblList+VBR",
                                                          scenarios());
}

} // namespace
