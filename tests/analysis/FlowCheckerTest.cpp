//===- tests/analysis/FlowCheckerTest.cpp - Real backends are flow-clean -===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Drives every backend through the shared scenario corpus with the
/// flow-invariant oracle (analysis/FlowInvariant.h) recomputing
/// node-local flow from the reachable heap snapshot after EVERY
/// scheduler step of EVERY explored interleaving, and asserts ZERO
/// violations:
///
///  - flat lists: VblList, LazyList, HarrisMichaelList, HarrisList,
///    OptimisticList, HandOverHandList;
///  - the unrolled VblChunkList for K in {1, 2, 7, 15} (K=1 maximizes
///    freeze/replace churn, K=2 mixes slot and structural paths, 7 and
///    15 cover multi-slot intervals with interior splits);
///  - the split-ordered hash set over both substrates, built with
///    InitialBuckets=1 / MaxLoadFactor=1 so resizes and lazy dummy
///    splicing interleave with the flow snapshots.
///
/// Episodes run under plain TracedPolicy — the oracle only needs the
/// step gating, not the O(accesses^2) happens-before analysis — and
/// LeakyDomain, so unlinked nodes keep their identity for the
/// unlink-implies-marked clause. The default episode cap keeps PR runs
/// fast; nightly CI deepens the exploration via VBL_EXPLORE_EPISODES.
///
//===----------------------------------------------------------------------===//

#include "core/VblChunkList.h"
#include "core/VblList.h"
#include "lists/HandOverHandList.h"
#include "lists/HarrisList.h"
#include "lists/HarrisMichaelList.h"
#include "lists/LazyList.h"
#include "lists/OptimisticList.h"
#include "maps/SplitOrderedHashSet.h"
#include "reclaim/LeakyDomain.h"
#include "sched/InterleavingExplorer.h"
#include "stats/Stats.h"

#include "sched/ScenarioCorpus.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

using namespace vbl;
using namespace vbl::sched;

namespace {

size_t episodeCap() {
  if (const char *Env = std::getenv("VBL_EXPLORE_EPISODES"))
    if (long Cap = std::atol(Env); Cap > 0)
      return static_cast<size_t>(Cap);
  return 120;
}

/// Sweeps \p Scenarios against fresh instances from \p Make, failing on
/// any flow violation and asserting the oracle actually ran (episodes
/// explored, snapshots counted).
template <class MakeFn>
void expectFlowCleanCorpus(const char *ListName,
                           const std::vector<Scenario> &Scenarios,
                           MakeFn Make) {
  const size_t Cap = episodeCap();
  const stats::Snapshot Before = stats::snapshotAll();
  for (const Scenario &S : Scenarios) {
    InterleavingExplorer Explorer(factoryForWith(S, Make));
    size_t Episodes = 0;
    Explorer.exploreAll(
        [&](const EpisodeResult &Result) {
          ++Episodes;
          for (const analysis::FlowReport &Report : Result.FlowViolations)
            ADD_FAILURE() << ListName << " / " << S.Name << ": "
                          << Report.toString();
        },
        std::min(S.MaxEpisodes, Cap));
    EXPECT_GT(Episodes, 0u) << ListName << " / " << S.Name;
  }
  if (stats::Enabled) {
    const stats::Snapshot Delta = stats::snapshotAll().delta(Before);
    EXPECT_GT(Delta.get(stats::Counter::AnalysisFlowChecks), 0u)
        << ListName << ": no flow snapshots taken — is flowView() wired "
           "into the episode factory?";
  }
}

template <class ListT> void expectFlowCleanLists(const char *ListName) {
  expectFlowCleanCorpus(ListName, scenarios(),
                        [] { return std::make_shared<ListT>(); });
}

TEST(FlowCheckerTest, VblListIsFlowClean) {
  expectFlowCleanLists<VblList<reclaim::LeakyDomain, TracedPolicy>>(
      "VblList");
}

TEST(FlowCheckerTest, LazyListIsFlowClean) {
  expectFlowCleanLists<LazyList<reclaim::LeakyDomain, TracedPolicy>>(
      "LazyList");
}

TEST(FlowCheckerTest, HarrisMichaelListIsFlowClean) {
  expectFlowCleanLists<HarrisMichaelList<reclaim::LeakyDomain, TracedPolicy>>(
      "HarrisMichaelList");
}

TEST(FlowCheckerTest, HarrisListIsFlowClean) {
  expectFlowCleanLists<HarrisList<reclaim::LeakyDomain, TracedPolicy>>(
      "HarrisList");
}

TEST(FlowCheckerTest, OptimisticListIsFlowClean) {
  expectFlowCleanLists<
      OptimisticList<reclaim::LeakyDomain, TasLock, TracedPolicy>>(
      "OptimisticList");
}

TEST(FlowCheckerTest, HandOverHandListIsFlowClean) {
  expectFlowCleanLists<HandOverHandList<TasLock, TracedPolicy>>(
      "HandOverHandList");
}

TEST(FlowCheckerTest, ChunkListK1IsFlowClean) {
  expectFlowCleanLists<VblChunkList<1, reclaim::LeakyDomain, TracedPolicy>>(
      "VblChunkList<1>");
}

TEST(FlowCheckerTest, ChunkListK2IsFlowClean) {
  expectFlowCleanLists<VblChunkList<2, reclaim::LeakyDomain, TracedPolicy>>(
      "VblChunkList<2>");
}

TEST(FlowCheckerTest, ChunkListK7IsFlowClean) {
  expectFlowCleanLists<VblChunkList<7, reclaim::LeakyDomain, TracedPolicy>>(
      "VblChunkList<7>");
}

TEST(FlowCheckerTest, ChunkListK15IsFlowClean) {
  expectFlowCleanLists<VblChunkList<15, reclaim::LeakyDomain, TracedPolicy>>(
      "VblChunkList<15>");
}

template <class HashT> void expectFlowCleanHash(const char *SetName) {
  expectFlowCleanCorpus(SetName, hashSetScenarios(), [] {
    return std::make_shared<HashT>(/*InitialBuckets=*/1,
                                   /*MaxLoadFactor=*/1);
  });
}

TEST(FlowCheckerTest, HashSetHarrisMichaelBackendIsFlowClean) {
  expectFlowCleanHash<maps::SplitOrderedHashSet<
      HarrisMichaelList<reclaim::LeakyDomain, TracedPolicy>>>(
      "SplitOrderedHashSet<HarrisMichael>");
}

TEST(FlowCheckerTest, HashSetVblBackendIsFlowClean) {
  expectFlowCleanHash<maps::SplitOrderedHashSet<
      VblList<reclaim::LeakyDomain, TracedPolicy>>>(
      "SplitOrderedHashSet<Vbl>");
}

} // namespace
