//===- tests/analysis/ChunkListAnalysisTest.cpp - Chunk list races -------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Runs VblChunkList under AnalyzedPolicy and asserts the
/// happens-before detector finds ZERO races. Two chunk shapes are
/// driven: K=1 (every second insert into a chunk is structural, so the
/// corpus maximizes freeze/replace churn) and K=2 (mixes the in-chunk
/// slot path with splits). On top of the shared corpus, two targeted
/// scenarios pin the chunk-specific windows down:
///
///  - split_vs_traversal: a full chunk is frozen and replaced by a
///    median split while another thread scans it without locks. The
///    scan's plain slot reads must be ordered against the writer's
///    occupancy/next publications.
///  - unlink_vs_insert: a chunk is emptied and unlinked while another
///    thread routes an insert through it. The marked-unlink handshake
///    must order the unlinker's writes against the inserter's
///    validation reads.
///
//===----------------------------------------------------------------------===//

#include "core/VblChunkList.h"
#include "reclaim/LeakyDomain.h"
#include "sched/AnalyzedPolicy.h"
#include "sched/InterleavingExplorer.h"

#include "sched/ScenarioCorpus.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace vbl;
using namespace vbl::sched;

namespace {

/// Chunk traversals log more accesses per op than the flat lists (one
/// record per occupied slot), so the per-scenario cap sits below the
/// CleanListsTest budget; a synchronization-discipline race still
/// surfaces within the first few dozen interleavings because the
/// detector checks every access pair of every episode.
/// Every exploration here deepens under VBL_EXPLORE_EPISODES (the
/// nightly raises it past the PR budgets); \p Default is the PR cap.
size_t episodeCapOr(size_t Default) {
  if (const char *Env = std::getenv("VBL_EXPLORE_EPISODES"))
    if (long Cap = std::atol(Env); Cap > 0)
      return static_cast<size_t>(Cap);
  return Default;
}

size_t corpusEpisodeCap() { return episodeCapOr(300); }

using ChunkK1 = VblChunkList<1, reclaim::LeakyDomain, AnalyzedPolicy>;
using ChunkK2 = VblChunkList<2, reclaim::LeakyDomain, AnalyzedPolicy>;

template <class ListT>
void expectRaceFree(const Scenario &S, const char *ListName,
                    size_t EpisodeCap) {
  InterleavingExplorer Explorer(factoryFor<ListT>(S));
  size_t Episodes = 0;
  size_t Accesses = 0;
  Explorer.exploreAll(
      [&](const EpisodeResult &Result) {
        ++Episodes;
        Accesses += Result.Raw.size();
        for (const analysis::RaceReport &Report : Result.Races)
          ADD_FAILURE() << ListName << " / " << S.Name << ": "
                        << Report.toString();
      },
      std::min(S.MaxEpisodes, EpisodeCap));
  EXPECT_GT(Episodes, 0u) << ListName << " / " << S.Name;
  EXPECT_GT(Accesses, 0u) << ListName << " / " << S.Name
                          << ": no accesses logged — is the policy wired?";
}

template <class ListT> void expectRaceFreeCorpus(const char *ListName) {
  for (const Scenario &S : scenarios())
    expectRaceFree<ListT>(S, ListName, corpusEpisodeCap());
}

TEST(ChunkListAnalysisTest, K1CorpusIsRaceFree) {
  expectRaceFreeCorpus<ChunkK1>("VblChunkList<1>");
}

TEST(ChunkListAnalysisTest, K2CorpusIsRaceFree) {
  expectRaceFreeCorpus<ChunkK2>("VblChunkList<2>");
}

// With K=2 the prefill {1, 2} packs one full chunk (anchor 1, both
// slots occupied). The insert of 3 finds no clean slot, freezes the
// chunk and replaces it with a median split while the other thread
// scans the frozen chunk's slots without taking any lock.
TEST(ChunkListAnalysisTest, SplitVsTraversal) {
  const Scenario S{"split_vs_traversal",
                   {1, 2},
                   {{{SetOp::Insert, 3}},
                    {{SetOp::Contains, 2}, {SetOp::Contains, 1}}},
                   {1, 2, 3},
                   60000};
  expectRaceFree<ChunkK2>(S, "VblChunkList<2>", episodeCapOr(4000));
}

// The remove empties the prefilled chunk (anchor 5) and best-effort
// unlinks it; the insert of 6 routes through that same chunk — either
// storing into it before the unlink or restarting past the mark.
TEST(ChunkListAnalysisTest, UnlinkVsInsert) {
  const Scenario S{"unlink_vs_insert",
                   {5},
                   {{{SetOp::Remove, 5}}, {{SetOp::Insert, 6}}},
                   {5, 6},
                   60000};
  expectRaceFree<ChunkK2>(S, "VblChunkList<2>", episodeCapOr(4000));
  expectRaceFree<ChunkK1>(S, "VblChunkList<1>", episodeCapOr(4000));
}

// A remove racing the freeze of its own chunk: with K=1 the insert of
// 2 finds chunk {1} full and freezes/replaces it (the replacement
// still carries 1) while the remove of 1 probes the version and reads
// liveness. This is the lost-remove window: remove's Marked read must
// sit between its probe and its acquisition, else the lock's fast path
// clears a slot in the retired copy and the live key survives.
TEST(ChunkListAnalysisTest, RemoveVsFreeze) {
  const Scenario S{"remove_vs_freeze",
                   {1},
                   {{{SetOp::Remove, 1}}, {{SetOp::Insert, 2}}},
                   {1, 2},
                   60000};
  expectRaceFree<ChunkK1>(S, "VblChunkList<1>", episodeCapOr(4000));
}

// A scan's optimistic window racing a median split: the insert of 3
// freezes the full chunk {1, 2} and publishes the split while the
// scanner records the chunk's version, collects its slots and
// revalidates. Every interleaving must be race-free — the scan's
// unlocked slot reads are ordered by the seqlock protocol, and a
// version bump between collect and validate forces the retry/fallback
// path rather than a torn window.
TEST(ChunkListAnalysisTest, ScanVsSplit) {
  const Scenario S{"scan_vs_split",
                   {1, 2},
                   {{{SetOp::Insert, 3}}, {{SetOp::RangeQuery, 1, 7}}},
                   {1, 2, 3},
                   60000};
  expectRaceFree<ChunkK2>(S, "VblChunkList<2>", episodeCapOr(4000));
  expectRaceFree<ChunkK1>(S, "VblChunkList<1>", episodeCapOr(4000));
}

// A scan racing the unlink of an emptied chunk inside its window: the
// remove empties the chunk (anchor 5) and best-effort unlinks it while
// the scanner's window walk reads its Next/Marked words.
TEST(ChunkListAnalysisTest, ScanVsChunkUnlink) {
  const Scenario S{"scan_vs_chunk_unlink",
                   {5},
                   {{{SetOp::Remove, 5}}, {{SetOp::RangeQuery, 1, 9}}},
                   {5},
                   60000};
  expectRaceFree<ChunkK2>(S, "VblChunkList<2>", episodeCapOr(4000));
  expectRaceFree<ChunkK1>(S, "VblChunkList<1>", episodeCapOr(4000));
}

// Same-chunk insert/remove interleaving with the chunk teetering on
// the full/empty boundary: slot writes, occupancy clears, compactions
// and unlinks all collide on one chunk.
TEST(ChunkListAnalysisTest, FullChunkToggleChain) {
  const Scenario S{"full_chunk_toggle",
                   {1, 2},
                   {{{SetOp::Remove, 1}, {SetOp::Insert, 1}},
                    {{SetOp::Insert, 3}}},
                   {1, 2, 3},
                   60000};
  expectRaceFree<ChunkK2>(S, "VblChunkList<2>", episodeCapOr(4000));
}

//===----------------------------------------------------------------===//
// Contention-adaptive shapes (Adaptive=true): cold merges and the
// heat-forced split ride the same freeze-and-replace protocol, so the
// same oracles must stay silent — plus the flow invariant (F1-F7),
// which is the sharp check on the merge's two-marks-one-swing order.
//===----------------------------------------------------------------===//

using AdaptiveK2 =
    VblChunkList<2, reclaim::LeakyDomain, AnalyzedPolicy, /*Adaptive=*/true>;
using AdaptiveK4 =
    VblChunkList<4, reclaim::LeakyDomain, AnalyzedPolicy, /*Adaptive=*/true>;

/// Race detector + flow oracle over one scenario. The corpus factory
/// wires flowView() automatically; a merge that swung before marking
/// both sources would trip F6 (unlinked-while-unmarked) here.
template <class ListT>
void expectRaceAndFlowFree(const Scenario &S, const char *ListName,
                           size_t EpisodeCap) {
  InterleavingExplorer Explorer(factoryFor<ListT>(S));
  size_t Episodes = 0;
  Explorer.exploreAll(
      [&](const EpisodeResult &Result) {
        ++Episodes;
        for (const analysis::RaceReport &Report : Result.Races)
          ADD_FAILURE() << ListName << " / " << S.Name << ": "
                        << Report.toString();
        for (const analysis::FlowReport &Report : Result.FlowViolations)
          ADD_FAILURE() << ListName << " / " << S.Name << ": "
                        << Report.toString();
      },
      std::min(S.MaxEpisodes, EpisodeCap));
  EXPECT_GT(Episodes, 0u) << ListName << " / " << S.Name;
}

TEST(ChunkListAnalysisTest, AdaptiveCorpusIsRaceFree) {
  // The generic corpus on an adaptive K=2 list: every remove that
  // leaves one key arms a merge probe, every abort bumps heat.
  for (const Scenario &S : scenarios())
    expectRaceAndFlowFree<AdaptiveK2>(S, "VblChunkList<2,adaptive>",
                                      corpusEpisodeCap());
}

TEST(ChunkListAnalysisTest, AdaptiveMergeScenariosAreClean) {
  // The targeted merge corpus needs K=4 (see adaptiveChunkScenarios):
  // prefill {1..5} lays out {1,2} -> {3,4,5}, and removing from the
  // first chunk makes the 4-key union fit exactly.
  for (const Scenario &S : adaptiveChunkScenarios())
    expectRaceAndFlowFree<AdaptiveK4>(S, "VblChunkList<4,adaptive>",
                                      episodeCapOr(2000));
}

} // namespace
