//===- tests/analysis/CleanListsTest.cpp - Real lists are race-free ------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Runs VblList, LazyList and HarrisMichaelList under AnalyzedPolicy
/// through the shared scenario corpus and asserts the happens-before
/// detector finds ZERO races in every explored interleaving: their
/// relaxed accesses are confined to unpublished nodes, every
/// publication is a release store/CAS, and every concurrent read is an
/// acquire load or lock-protected — so no conflicting pair is left
/// unordered.
///
/// Exploration is capped well below the optimality test's budget: the
/// point here is breadth across lists × scenarios, and a race in a
/// list's synchronization discipline is overwhelmingly exposed within
/// the first few hundred interleavings (the detector checks EVERY pair
/// of accesses in each one).
///
//===----------------------------------------------------------------------===//

#include "core/VblList.h"
#include "lists/HarrisMichaelList.h"
#include "lists/LazyList.h"
#include "reclaim/LeakyDomain.h"
#include "sched/AnalyzedPolicy.h"
#include "sched/InterleavingExplorer.h"

#include "sched/ScenarioCorpus.h"

#include <gtest/gtest.h>

using namespace vbl;
using namespace vbl::sched;

namespace {

constexpr size_t EpisodeCap = 800;

template <class ListT> void expectRaceFreeCorpus(const char *ListName) {
  for (const Scenario &S : scenarios()) {
    InterleavingExplorer Explorer(factoryFor<ListT>(S));
    size_t Episodes = 0;
    size_t Accesses = 0;
    Explorer.exploreAll(
        [&](const EpisodeResult &Result) {
          ++Episodes;
          Accesses += Result.Raw.size();
          for (const analysis::RaceReport &Report : Result.Races)
            ADD_FAILURE() << ListName << " / " << S.Name
                          << ": " << Report.toString();
        },
        std::min(S.MaxEpisodes, EpisodeCap));
    EXPECT_GT(Episodes, 0u) << ListName << " / " << S.Name;
    EXPECT_GT(Accesses, 0u) << ListName << " / " << S.Name
                            << ": no accesses logged — is the policy wired?";
  }
}

TEST(CleanListsTest, VblListIsRaceFree) {
  expectRaceFreeCorpus<VblList<reclaim::LeakyDomain, AnalyzedPolicy>>(
      "VblList");
}

TEST(CleanListsTest, LazyListIsRaceFree) {
  expectRaceFreeCorpus<LazyList<reclaim::LeakyDomain, AnalyzedPolicy>>(
      "LazyList");
}

TEST(CleanListsTest, HarrisMichaelListIsRaceFree) {
  expectRaceFreeCorpus<
      HarrisMichaelList<reclaim::LeakyDomain, AnalyzedPolicy>>(
      "HarrisMichaelList");
}

} // namespace
