//===- tests/analysis/RacyList.h - A deliberately racy sorted list -------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A toy concurrent sorted list with one *seeded* synchronization bug:
/// insert publishes the new node with a relaxed store instead of a
/// release store, so a concurrent traversal can reach the node without
/// any happens-before edge ordering it after the node's initialisation.
/// Everything else follows the usual discipline (acquire traversal
/// loads, release unlink in remove), which pins the detector's expected
/// finding to exactly one write site.
///
/// The racy accesses live in tiny single-line helpers with an adjacent
/// __LINE__ constant so the test can assert the *exact* pair of access
/// sites the race detector reports.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_TESTS_ANALYSIS_RACYLIST_H
#define VBL_TESTS_ANALYSIS_RACYLIST_H

#include "core/SetConfig.h"
#include "support/Compiler.h"
#include "sync/Policy.h"

#include <atomic>
#include <utility>
#include <vector>

namespace vbl {
namespace tests {

template <class PolicyT> class RacyList {
public:
  using Policy = PolicyT;

  struct Node {
    explicit Node(SetKey Val) : Val(Val) {}
    const SetKey Val;
    std::atomic<Node *> Next{nullptr};
  };

  /// The seeded bug: publication of the new node uses a relaxed store,
  /// so readers reaching it get no acquire edge back to its init.
  static constexpr unsigned PublishLine = __LINE__ + 2;
  void publish(Node *Prev, Node *NewNode) {
    Policy::write(Prev->Next, NewNode, std::memory_order_relaxed, Prev, MemField::Next);
  }

  /// Traversal load — correct (acquire), but racing with publish().
  static constexpr unsigned TraverseLine = __LINE__ + 2;
  Node *readNext(const Node *From) const {
    return Policy::read(From->Next, std::memory_order_acquire, From, MemField::Next);
  }

  RacyList() {
    Tail = new Node(MaxSentinel);
    Head = new Node(MinSentinel);
    Head->Next.store(Tail, std::memory_order_relaxed);
  }

  ~RacyList() {
    for (Node *Curr = Head; Curr;) {
      Node *Next = Curr->Next.load(std::memory_order_relaxed);
      delete Curr;
      Curr = Next;
    }
    for (Node *Dead : Garbage)
      delete Dead;
  }

  RacyList(const RacyList &) = delete;
  RacyList &operator=(const RacyList &) = delete;

  bool insert(SetKey Key) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    auto [Prev, Curr] = locate(Key);
    if (Policy::readValue(Curr->Val, Curr) == Key)
      return false;
    Node *NewNode = new Node(Key);
    NewNode->Next.store(Curr, std::memory_order_relaxed);
    Policy::onNewNode(NewNode, Key);
    publish(Prev, NewNode);
    return true;
  }

  bool remove(SetKey Key) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    auto [Prev, Curr] = locate(Key);
    if (Policy::readValue(Curr->Val, Curr) != Key)
      return false;
    Node *Succ = readNext(Curr);
    Policy::write(Prev->Next, Succ, std::memory_order_release, Prev,
                  MemField::Next);
    Garbage.push_back(Curr);
    return true;
  }

  bool contains(SetKey Key) const {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    auto [Prev, Curr] = locate(Key);
    (void)Prev;
    return Policy::readValue(Curr->Val, Curr) == Key;
  }

  const void *headNode() const { return Head; }

  std::vector<std::pair<const void *, SetKey>> nodeChain() const {
    std::vector<std::pair<const void *, SetKey>> Chain;
    for (const Node *Curr = Head; Curr;
         Curr = Curr->Next.load(std::memory_order_relaxed))
      Chain.emplace_back(Curr, Curr->Val);
    return Chain;
  }

private:
  /// Returns (Prev, Curr) with Prev->Val < Key <= Curr->Val.
  std::pair<Node *, Node *> locate(SetKey Key) const {
    Node *Prev = Head;
    Node *Curr = readNext(Prev);
    while (Policy::readValue(Curr->Val, Curr) < Key) {
      Prev = Curr;
      Curr = readNext(Curr);
    }
    return {Prev, Curr};
  }

  Node *Head;
  Node *Tail;
  std::vector<Node *> Garbage;
};

} // namespace tests
} // namespace vbl

#endif // VBL_TESTS_ANALYSIS_RACYLIST_H
