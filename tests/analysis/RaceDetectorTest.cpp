//===- tests/analysis/RaceDetectorTest.cpp - HB race detector tests ------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Three layers of coverage:
///  - VectorClock algebra,
///  - RaceDetector on hand-built record streams (lock edges,
///    release/acquire publication, failed-CAS acquire semantics),
///  - the full pipeline: RacyList — a list with one seeded relaxed
///    publication — explored under AnalyzedPolicy must be flagged with
///    exactly the seeded pair of access sites, and the reported
///    schedule prefix must reproduce the race when replayed.
///
//===----------------------------------------------------------------------===//

#include "analysis/RaceDetector.h"
#include "analysis/VectorClock.h"
#include "lists/SequentialList.h"
#include "sched/AnalyzedPolicy.h"
#include "sched/InterleavingExplorer.h"

#include "RacyList.h"
#include "sched/ScenarioCorpus.h"

#include <gtest/gtest.h>

using namespace vbl;
using namespace vbl::analysis;
using namespace vbl::sched;

namespace {

TEST(VectorClockTest, TickAndGet) {
  VectorClock C;
  EXPECT_EQ(C.get(3), 0u);
  C.tick(3);
  C.tick(3);
  C.tick(0);
  EXPECT_EQ(C.get(3), 2u);
  EXPECT_EQ(C.get(0), 1u);
  EXPECT_EQ(C.get(7), 0u);
}

TEST(VectorClockTest, JoinIsPointwiseMax) {
  VectorClock A, B;
  A.set(0, 5);
  A.set(2, 1);
  B.set(0, 3);
  B.set(1, 4);
  A.join(B);
  EXPECT_EQ(A.get(0), 5u);
  EXPECT_EQ(A.get(1), 4u);
  EXPECT_EQ(A.get(2), 1u);
}

TEST(VectorClockTest, LessOrEqualOrdersCausally) {
  VectorClock A, B;
  A.set(0, 1);
  B.set(0, 2);
  B.set(1, 1);
  EXPECT_TRUE(A.lessOrEqual(B));
  EXPECT_FALSE(B.lessOrEqual(A));
  // Incomparable clocks (concurrent points).
  VectorClock D;
  D.set(1, 5);
  EXPECT_FALSE(B.lessOrEqual(D));
  EXPECT_FALSE(D.lessOrEqual(B));
}

/// Builds a synthetic record (Step/OpIndex are irrelevant to the
/// happens-before analysis).
AccessRecord rec(RecordKind Kind, uint32_t Thread, const void *Node,
                 MemField Field, std::memory_order Order, uint32_t Line) {
  AccessRecord R;
  R.Kind = Kind;
  R.Thread = Thread;
  R.Node = Node;
  R.Field = Field;
  R.Order = Order;
  R.File = "synthetic.cpp";
  R.Line = Line;
  return R;
}

int NodeA, NodeB, LockL;

TEST(RaceDetectorTest, UnorderedPlainConflictIsARace) {
  std::vector<AccessRecord> Records = {
      rec(RecordKind::Write, 0, &NodeA, MemField::Next,
          std::memory_order_relaxed, 10),
      rec(RecordKind::Read, 1, &NodeA, MemField::Next,
          std::memory_order_relaxed, 20),
  };
  auto Races = RaceDetector::detect(Records);
  ASSERT_EQ(Races.size(), 1u);
  EXPECT_EQ(Races[0].First.Line, 10u);
  EXPECT_EQ(Races[0].Second.Line, 20u);
}

TEST(RaceDetectorTest, ReadsDoNotConflict) {
  std::vector<AccessRecord> Records = {
      rec(RecordKind::Read, 0, &NodeA, MemField::Next,
          std::memory_order_relaxed, 10),
      rec(RecordKind::Read, 1, &NodeA, MemField::Next,
          std::memory_order_relaxed, 20),
  };
  EXPECT_TRUE(RaceDetector::detect(Records).empty());
}

TEST(RaceDetectorTest, DistinctLocationsDoNotConflict) {
  std::vector<AccessRecord> Records = {
      rec(RecordKind::Write, 0, &NodeA, MemField::Next,
          std::memory_order_relaxed, 10),
      rec(RecordKind::Write, 1, &NodeB, MemField::Next,
          std::memory_order_relaxed, 20),
      rec(RecordKind::Write, 1, &NodeA, MemField::Marked,
          std::memory_order_relaxed, 30),
  };
  EXPECT_TRUE(RaceDetector::detect(Records).empty());
}

TEST(RaceDetectorTest, ReleaseAcquirePublicationOrdersNodeInit) {
  // T0 initialises NodeB, publishes it through NodeA.Next with release;
  // T1 reads the pointer with acquire, then touches NodeB plainly.
  std::vector<AccessRecord> Records = {
      rec(RecordKind::NodeInit, 0, &NodeB, MemField::Val,
          std::memory_order_relaxed, 10),
      rec(RecordKind::Write, 0, &NodeA, MemField::Next,
          std::memory_order_release, 11),
      rec(RecordKind::Read, 1, &NodeA, MemField::Next,
          std::memory_order_acquire, 20),
      rec(RecordKind::PlainRead, 1, &NodeB, MemField::Val,
          std::memory_order_relaxed, 21),
  };
  EXPECT_TRUE(RaceDetector::detect(Records).empty());
}

TEST(RaceDetectorTest, RelaxedPublicationLeavesNodeInitRacy) {
  // Same stream with a relaxed publication: both the pointer itself and
  // the node's init are now racy.
  std::vector<AccessRecord> Records = {
      rec(RecordKind::NodeInit, 0, &NodeB, MemField::Val,
          std::memory_order_relaxed, 10),
      rec(RecordKind::Write, 0, &NodeA, MemField::Next,
          std::memory_order_relaxed, 11),
      rec(RecordKind::Read, 1, &NodeA, MemField::Next,
          std::memory_order_acquire, 20),
      rec(RecordKind::PlainRead, 1, &NodeB, MemField::Val,
          std::memory_order_relaxed, 21),
  };
  auto Races = RaceDetector::detect(Records);
  ASSERT_EQ(Races.size(), 2u);
  EXPECT_EQ(Races[0].First.Line, 11u); // relaxed store vs acquire load
  EXPECT_EQ(Races[0].Second.Line, 20u);
  EXPECT_EQ(Races[1].First.Line, 10u); // node init vs plain read
  EXPECT_EQ(Races[1].Second.Line, 21u);
}

TEST(RaceDetectorTest, LockOrdersPlainAccesses) {
  std::vector<AccessRecord> Records = {
      rec(RecordKind::LockAcquire, 0, &LockL, MemField::Lock,
          std::memory_order_acquire, 10),
      rec(RecordKind::Write, 0, &NodeA, MemField::Next,
          std::memory_order_relaxed, 11),
      rec(RecordKind::LockRelease, 0, &LockL, MemField::Lock,
          std::memory_order_release, 12),
      rec(RecordKind::LockAcquire, 1, &LockL, MemField::Lock,
          std::memory_order_acquire, 20),
      rec(RecordKind::Read, 1, &NodeA, MemField::Next,
          std::memory_order_relaxed, 21),
      rec(RecordKind::LockRelease, 1, &LockL, MemField::Lock,
          std::memory_order_release, 22),
  };
  EXPECT_TRUE(RaceDetector::detect(Records).empty());
}

TEST(RaceDetectorTest, DifferentLocksDoNotOrder) {
  int OtherLock;
  std::vector<AccessRecord> Records = {
      rec(RecordKind::LockAcquire, 0, &LockL, MemField::Lock,
          std::memory_order_acquire, 10),
      rec(RecordKind::Write, 0, &NodeA, MemField::Next,
          std::memory_order_relaxed, 11),
      rec(RecordKind::LockRelease, 0, &LockL, MemField::Lock,
          std::memory_order_release, 12),
      rec(RecordKind::LockAcquire, 1, &OtherLock, MemField::Lock,
          std::memory_order_acquire, 20),
      rec(RecordKind::Read, 1, &NodeA, MemField::Next,
          std::memory_order_relaxed, 21),
      rec(RecordKind::LockRelease, 1, &OtherLock, MemField::Lock,
          std::memory_order_release, 22),
  };
  EXPECT_EQ(RaceDetector::detect(Records).size(), 1u);
}

TEST(RaceDetectorTest, FailedCasStillSynchronizes) {
  // T0 marks NodeA with a release CAS; T1's CAS on the same location
  // fails but its acquire failure load still orders T1 after T0, so
  // T1's subsequent plain read of the node's Val is clean.
  std::vector<AccessRecord> Records = {
      rec(RecordKind::NodeInit, 0, &NodeA, MemField::Val,
          std::memory_order_relaxed, 10),
      rec(RecordKind::RmwSuccess, 0, &NodeA, MemField::Marked,
          std::memory_order_release, 11),
      rec(RecordKind::RmwFail, 1, &NodeA, MemField::Marked,
          std::memory_order_acquire, 20),
      rec(RecordKind::PlainRead, 1, &NodeA, MemField::Val,
          std::memory_order_relaxed, 21),
  };
  EXPECT_TRUE(RaceDetector::detect(Records).empty());
}

TEST(RaceDetectorTest, DuplicateSitePairsReportedOnce) {
  std::vector<AccessRecord> Records = {
      rec(RecordKind::Write, 0, &NodeA, MemField::Next,
          std::memory_order_relaxed, 10),
      rec(RecordKind::Read, 1, &NodeA, MemField::Next,
          std::memory_order_relaxed, 20),
      rec(RecordKind::Read, 1, &NodeA, MemField::Next,
          std::memory_order_relaxed, 20),
  };
  EXPECT_EQ(RaceDetector::detect(Records).size(), 1u);
}

//===----------------------------------------------------------------------===//
// Full pipeline: explorer + AnalyzedPolicy + seeded bug.
//===----------------------------------------------------------------------===//

using AnalyzedRacy = vbl::tests::RacyList<AnalyzedPolicy>;
using AnalyzedLL = SequentialList<AnalyzedPolicy>;

Scenario racyScenario() {
  return {"racy_insert_vs_contains", {},
          {{{SetOp::Insert, 1}}, {{SetOp::Contains, 1}}}, {1}, 60000};
}

/// True iff \p Report is the seeded bug: the relaxed publication in
/// RacyList::publish conflicting with the acquire traversal load in
/// RacyList::readNext (in either schedule order).
bool isSeededRace(const RaceReport &Report) {
  const auto At = [](const AccessRecord &R, unsigned Line) {
    return R.Line == Line && R.Field == MemField::Next &&
           std::string(R.File).find("RacyList.h") != std::string::npos;
  };
  return (At(Report.First, AnalyzedRacy::PublishLine) &&
          At(Report.Second, AnalyzedRacy::TraverseLine)) ||
         (At(Report.First, AnalyzedRacy::TraverseLine) &&
          At(Report.Second, AnalyzedRacy::PublishLine));
}

TEST(RaceDetectorPipelineTest, SeededRacyListIsFlaggedAtTheSeededSites) {
  InterleavingExplorer Explorer(factoryFor<AnalyzedRacy>(racyScenario()));
  size_t RacyEpisodes = 0;
  std::vector<RaceReport> Seeded;
  Explorer.exploreAll(
      [&](const EpisodeResult &Result) {
        if (Result.Races.empty())
          return;
        ++RacyEpisodes;
        for (const RaceReport &Report : Result.Races)
          if (isSeededRace(Report))
            Seeded.push_back(Report);
      },
      60000);
  EXPECT_GT(RacyEpisodes, 0u) << "no interleaving exposed the seeded race";
  ASSERT_FALSE(Seeded.empty())
      << "races found, but none matched the seeded publish/traverse pair";

  // The diagnostic must name both sites and the exposing prefix.
  const std::string Text = Seeded.front().toString();
  EXPECT_NE(Text.find("RacyList.h"), std::string::npos) << Text;
  EXPECT_NE(Text.find("Next"), std::string::npos) << Text;
  EXPECT_NE(Text.find("schedule prefix"), std::string::npos) << Text;
}

TEST(RaceDetectorPipelineTest, ReportedPrefixReproducesTheRace) {
  InterleavingExplorer Explorer(factoryFor<AnalyzedRacy>(racyScenario()));
  RaceReport Witness;
  bool Found = false;
  Explorer.exploreAll(
      [&](const EpisodeResult &Result) {
        for (const RaceReport &Report : Result.Races)
          if (!Found && isSeededRace(Report)) {
            Witness = Report;
            Found = true;
          }
      },
      60000);
  ASSERT_TRUE(Found);

  // Replaying the reported choice sequence must hit the same race.
  const EpisodeResult Replay = Explorer.run(Witness.SchedulePrefix);
  const bool Reproduced =
      std::any_of(Replay.Races.begin(), Replay.Races.end(),
                  [&](const RaceReport &R) { return R.sameSites(Witness); });
  EXPECT_TRUE(Reproduced) << "prefix replay lost the race:\n"
                          << Witness.toString();
}

TEST(RaceDetectorPipelineTest, SequentialSpecIsRacyByConstruction) {
  // LL uses relaxed everything — under the model it must be flagged the
  // moment two threads write the same location (both inserts link their
  // node after the head sentinel here).
  Scenario S{"ll_insert_vs_insert", {},
             {{{SetOp::Insert, 1}}, {{SetOp::Insert, 2}}}, {1, 2}, 60000};
  InterleavingExplorer Explorer(factoryFor<AnalyzedLL>(S));
  size_t RacyEpisodes = 0;
  Explorer.exploreAll(
      [&](const EpisodeResult &Result) { RacyEpisodes += !Result.Races.empty(); },
      60000);
  EXPECT_GT(RacyEpisodes, 0u);
}

} // namespace
