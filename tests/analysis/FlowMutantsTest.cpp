//===- tests/analysis/FlowMutantsTest.cpp - Seeded bugs are flagged ------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// The positive controls for the flow-invariant oracle: each mutant in
/// FlowMutantLists.h seeds exactly one flow bug, and the checker must
/// flag the EXACT clause — and only that clause — with a reproducing
/// schedule prefix that, replayed through InterleavingExplorer::run,
/// trips the same clause again:
///
///   RudeList        unlink without marking -> F6 UnlinkedUnmarked
///   ForgetfulList   mark without unlinking -> F7 MarkedLingers
///   SloppyChunkList out-of-interval publish -> F4 ChunkInterval
///
//===----------------------------------------------------------------------===//

#include "analysis/FlowInvariant.h"
#include "sched/InterleavingExplorer.h"

#include "FlowMutantLists.h"
#include "sched/ScenarioCorpus.h"

#include <gtest/gtest.h>

#include <optional>

using namespace vbl;
using namespace vbl::sched;

namespace {

constexpr size_t EpisodeCap = 500;

/// Explores \p S against \p ListT, asserting (a) at least one episode
/// reports \p Expected, (b) no episode reports any OTHER clause, and
/// (c) the first report's schedule prefix is non-empty and replaying it
/// reproduces the same clause.
template <class ListT>
void expectMutantFlagged(const Scenario &S, analysis::FlowClause Expected,
                         const char *ListName) {
  InterleavingExplorer Explorer(factoryFor<ListT>(S));
  std::optional<analysis::FlowReport> Found;
  size_t Episodes = 0;
  size_t Flagged = 0;
  Explorer.exploreAll(
      [&](const EpisodeResult &Result) {
        ++Episodes;
        if (!Result.FlowViolations.empty())
          ++Flagged;
        for (const analysis::FlowReport &Report : Result.FlowViolations) {
          EXPECT_EQ(Report.Clause, Expected)
              << ListName << " / " << S.Name
              << ": flagged a clause other than "
              << analysis::flowClauseName(Expected) << ":\n"
              << Report.toString();
          if (!Found && Report.Clause == Expected)
            Found = Report;
        }
      },
      EpisodeCap);
  EXPECT_GT(Episodes, 0u) << ListName << " / " << S.Name;
  ASSERT_TRUE(Found.has_value())
      << ListName << " / " << S.Name << ": seeded bug never flagged ("
      << Episodes << " episodes explored)";
  EXPECT_GT(Flagged, 0u);

  // The report must carry a reproducer: the choice sequence up to and
  // including the step whose snapshot exposed the violation.
  EXPECT_FALSE(Found->SchedulePrefix.empty())
      << ListName << ": report has no schedule prefix:\n"
      << Found->toString();
  const EpisodeResult Replay = Explorer.run(Found->SchedulePrefix);
  bool Reproduced = false;
  for (const analysis::FlowReport &Report : Replay.FlowViolations)
    Reproduced |= Report.Clause == Expected;
  EXPECT_TRUE(Reproduced)
      << ListName << ": replaying the reported schedule prefix did not "
      << "reproduce " << analysis::flowClauseName(Expected) << ":\n"
      << Found->toString();
}

TEST(FlowMutantsTest, UnlinkWithoutMarkTripsUnlinkedUnmarked) {
  const Scenario S{"rude_unlink",
                   {5},
                   {{{SetOp::Remove, 5}}, {{SetOp::Contains, 5}}},
                   {5},
                   60000};
  expectMutantFlagged<tests::RudeList<TracedPolicy>>(
      S, analysis::FlowClause::UnlinkedUnmarked, "RudeList");
}

TEST(FlowMutantsTest, MarkWithoutUnlinkTripsMarkedLingers) {
  const Scenario S{"forgetful_mark",
                   {5},
                   {{{SetOp::Remove, 5}}, {{SetOp::Contains, 5}}},
                   {5},
                   60000};
  expectMutantFlagged<tests::ForgetfulList<TracedPolicy>>(
      S, analysis::FlowClause::MarkedLingers, "ForgetfulList");
}

TEST(FlowMutantsTest, OutOfIntervalPublishTripsChunkInterval) {
  // 25 belongs to chunk B's keyset [20, +inf) but the seeded bug
  // publishes it into chunk A whose interval is [10, 20). The
  // companion insert of 12 is routed (mis)identically but lands
  // in-interval, pinning the finding to the misrouted key.
  const Scenario S{"sloppy_publish",
                   {},
                   {{{SetOp::Insert, 25}}, {{SetOp::Insert, 12}}},
                   {12, 25},
                   60000};
  expectMutantFlagged<tests::SloppyChunkList<TracedPolicy>>(
      S, analysis::FlowClause::ChunkInterval, "SloppyChunkList");
}

} // namespace
