//===- tests/analysis/FlowMutantLists.h - Seeded flow-invariant bugs -----===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deliberately broken toy lists, RacyList-style, each seeding exactly
/// one flow-invariant violation so FlowMutantsTest can assert the
/// checker flags the *exact* clause (and nothing else is needed to
/// trip it):
///
///   RudeList        remove() unlinks the victim WITHOUT marking it
///                   first — the unlink-before-mark lost-update shape.
///                   Expected clause: F6 UnlinkedUnmarked.
///   ForgetfulList   remove() marks the victim but never unlinks it.
///                   Expected clause: F7 MarkedLingers (at episode
///                   end; marked-yet-reachable is legal mid-episode).
///   SloppyChunkList insert() publishes every key into the FIRST chunk
///                   regardless of the chunk's keyset interval.
///                   Expected clause: F4 ChunkInterval.
///
/// Everything else in each list follows the usual discipline so the
/// expected finding is pinned to the one seeded bug. Like RacyList,
/// these are only ever driven by the deterministic step scheduler, so
/// they need no reclamation domain (removed nodes go to a Garbage
/// list freed with the structure).
///
//===----------------------------------------------------------------------===//

#ifndef VBL_TESTS_ANALYSIS_FLOWMUTANTLISTS_H
#define VBL_TESTS_ANALYSIS_FLOWMUTANTLISTS_H

#include "analysis/FlowView.h"
#include "core/SetConfig.h"
#include "support/Compiler.h"
#include "sync/Policy.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

namespace vbl {
namespace tests {

/// Common flat-node scaffolding for the two flat mutants: a sorted
/// list with a Marked flag, correct release publication and acquire
/// traversal. Only remove() differs between the mutants.
template <class PolicyT> class FlatMutantBase {
public:
  using Policy = PolicyT;

  struct Node {
    explicit Node(SetKey Val) : Val(Val) {}
    const SetKey Val;
    std::atomic<Node *> Next{nullptr};
    std::atomic<bool> Marked{false};
  };

  FlatMutantBase() {
    Tail = new Node(MaxSentinel);
    Head = new Node(MinSentinel);
    Head->Next.store(Tail, std::memory_order_relaxed);
  }

  ~FlatMutantBase() {
    for (Node *Curr = Head; Curr;) {
      Node *Next = Curr->Next.load(std::memory_order_relaxed);
      delete Curr;
      Curr = Next;
    }
    for (Node *Dead : Garbage)
      delete Dead;
  }

  FlatMutantBase(const FlatMutantBase &) = delete;
  FlatMutantBase &operator=(const FlatMutantBase &) = delete;

  bool insert(SetKey Key) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    auto [Prev, Curr] = locate(Key);
    if (Policy::readValue(Curr->Val, Curr) == Key)
      return false;
    Node *NewNode = new Node(Key);
    NewNode->Next.store(Curr, std::memory_order_relaxed);
    Policy::onNewNode(NewNode, Key);
    Policy::write(Prev->Next, NewNode, std::memory_order_release, Prev,
                  MemField::Next);
    return true;
  }

  bool contains(SetKey Key) const {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    auto [Prev, Curr] = locate(Key);
    (void)Prev;
    return Policy::readValue(Curr->Val, Curr) == Key &&
           !Policy::read(Curr->Marked, std::memory_order_acquire, Curr,
                         MemField::Marked);
  }

  const void *headNode() const { return Head; }

  std::vector<std::pair<const void *, SetKey>> nodeChain() const {
    std::vector<std::pair<const void *, SetKey>> Chain;
    for (const Node *Curr = Head; Curr;
         Curr = Curr->Next.load(std::memory_order_relaxed))
      Chain.emplace_back(Curr, Curr->Val);
    return Chain;
  }

  analysis::FlowView flowView() {
    analysis::FlowView View;
    View.HasMark = true;
    View.MarkedMayLinger = false;
    View.Describe = [this] {
      std::vector<analysis::FlowNodeDesc> Chain;
      for (const Node *Curr = Head;
           Curr && Chain.size() < analysis::FlowWalkCap;
           Curr = Curr->Next.load(std::memory_order_relaxed)) {
        analysis::FlowNodeDesc D;
        D.Node = Curr;
        D.Key = Curr->Val;
        D.Marked = Curr->Marked.load(std::memory_order_relaxed);
        Chain.push_back(std::move(D));
      }
      return Chain;
    };
    return View;
  }

protected:
  std::pair<Node *, Node *> locate(SetKey Key) const {
    Node *Prev = Head;
    Node *Curr = Policy::read(Prev->Next, std::memory_order_acquire, Prev,
                              MemField::Next);
    while (Policy::readValue(Curr->Val, Curr) < Key) {
      Prev = Curr;
      Curr = Policy::read(Curr->Next, std::memory_order_acquire, Curr,
                          MemField::Next);
    }
    return {Prev, Curr};
  }

  Node *Head;
  Node *Tail;
  std::vector<Node *> Garbage;
};

/// Seeded bug: unlink without marking. The victim leaves the reachable
/// set while still unmarked — exactly what F6 UnlinkedUnmarked rejects.
template <class PolicyT>
class RudeList : public FlatMutantBase<PolicyT> {
  using Base = FlatMutantBase<PolicyT>;
  using Policy = PolicyT;
  using typename Base::Node;

public:
  static constexpr unsigned UnlinkLine = __LINE__ + 5;
  bool remove(SetKey Key) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    auto [Prev, Curr] = this->locate(Key);
    if (Policy::readValue(Curr->Val, Curr) != Key)
      return false;
    // BUG: no logical deletion — the node vanishes unmarked.
    Policy::write(Prev->Next,
                  Policy::read(Curr->Next, std::memory_order_acquire, Curr,
                               MemField::Next),
                  std::memory_order_release, Prev, MemField::Next);
    this->Garbage.push_back(Curr);
    return true;
  }
};

/// Seeded bug: mark without unlinking. The victim stays reachable and
/// marked forever — legal mid-episode (every backend has that window)
/// but a violation of F7 MarkedLingers once all operations returned.
template <class PolicyT>
class ForgetfulList : public FlatMutantBase<PolicyT> {
  using Base = FlatMutantBase<PolicyT>;
  using Policy = PolicyT;
  using typename Base::Node;

public:
  static constexpr unsigned MarkLine = __LINE__ + 5;
  bool remove(SetKey Key) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    auto [Prev, Curr] = this->locate(Key);
    (void)Prev;
    if (Policy::readValue(Curr->Val, Curr) != Key)
      return false;
    // BUG: logical deletion only — the unlink never happens.
    Policy::write(Curr->Marked, true, std::memory_order_release, Curr,
                  MemField::Marked);
    return true;
  }
};

/// A fixed two-chunk toy (head -> A@10 -> B@20 -> tail, four slots per
/// chunk) whose insert publishes every key into chunk A regardless of
/// interval — keys >= 20 land outside A's keyset [10, 20), the exact
/// shape F4 ChunkInterval rejects. remove/contains are honest.
template <class PolicyT> class SloppyChunkList {
public:
  using Policy = PolicyT;
  static constexpr unsigned Capacity = 4;
  static constexpr SetKey AnchorA = 10;
  static constexpr SetKey AnchorB = 20;

  struct Chunk {
    explicit Chunk(SetKey Anchor) : Anchor(Anchor) {}
    const SetKey Anchor;
    std::atomic<Chunk *> Next{nullptr};
    std::atomic<bool> Marked{false};
    std::atomic<uint32_t> FirstClean{0};
    std::atomic<uint64_t> Occ{0};
    std::array<std::atomic<SetKey>, Capacity> Keys{};
  };

  SloppyChunkList() {
    Tail = new Chunk(MaxSentinel);
    B = new Chunk(AnchorB);
    A = new Chunk(AnchorA);
    Head = new Chunk(MinSentinel);
    B->Next.store(Tail, std::memory_order_relaxed);
    A->Next.store(B, std::memory_order_relaxed);
    Head->Next.store(A, std::memory_order_relaxed);
  }

  ~SloppyChunkList() {
    delete Head;
    delete A;
    delete B;
    delete Tail;
  }

  SloppyChunkList(const SloppyChunkList &) = delete;
  SloppyChunkList &operator=(const SloppyChunkList &) = delete;

  static constexpr unsigned MisroutedStoreLine = __LINE__ + 9;
  bool insert(SetKey Key) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    if (find(Key))
      return false;
    // BUG: every key is published into chunk A, ignoring the interval
    // its anchor bounds impose.
    Chunk *C = A;
    const uint32_t FC = Policy::read(C->FirstClean,
                                     std::memory_order_relaxed,
                                     &C->FirstClean, MemField::Marked);
    if (FC >= Capacity)
      return false; // Toy: no structural path.
    Policy::write(C->Keys[FC], Key, std::memory_order_relaxed, &C->Keys[FC],
                  MemField::Val);
    const uint64_t O = Policy::read(C->Occ, std::memory_order_relaxed,
                                    &C->Occ, MemField::Marked);
    Policy::write(C->Occ, O | (uint64_t{1} << FC),
                  std::memory_order_release, &C->Occ, MemField::Marked);
    Policy::write(C->FirstClean, FC + 1, std::memory_order_relaxed,
                  &C->FirstClean, MemField::Marked);
    return true;
  }

  bool remove(SetKey Key) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    for (Chunk *C : {A, B}) {
      const uint64_t Occ = Policy::read(C->Occ, std::memory_order_acquire,
                                        &C->Occ, MemField::Marked);
      for (uint32_t I = 0; I < Capacity; ++I) {
        if (!(Occ & (uint64_t{1} << I)))
          continue;
        if (Policy::read(C->Keys[I], std::memory_order_relaxed,
                         &C->Keys[I], MemField::Val) == Key) {
          Policy::write(C->Occ, Occ & ~(uint64_t{1} << I),
                        std::memory_order_release, &C->Occ,
                        MemField::Marked);
          return true;
        }
      }
    }
    return false;
  }

  bool contains(SetKey Key) const { return find(Key); }

  const void *headNode() const { return Head; }

  std::vector<std::pair<const void *, SetKey>> nodeChain() const {
    std::vector<std::pair<const void *, SetKey>> Chain;
    for (const Chunk *Curr = Head; Curr;
         Curr = Curr->Next.load(std::memory_order_relaxed))
      Chain.emplace_back(Curr, Curr->Anchor);
    return Chain;
  }

  analysis::FlowView flowView() {
    analysis::FlowView View;
    View.HasMark = true;
    View.MarkedMayLinger = false;
    View.IsChunked = true;
    View.Describe = [this] {
      std::vector<analysis::FlowNodeDesc> Chain;
      for (const Chunk *Curr = Head;
           Curr && Chain.size() < analysis::FlowWalkCap;
           Curr = Curr->Next.load(std::memory_order_relaxed)) {
        analysis::FlowNodeDesc D;
        D.Node = Curr;
        D.Key = Curr->Anchor;
        D.Marked = Curr->Marked.load(std::memory_order_relaxed);
        D.IsChunk = true;
        D.FirstClean = Curr->FirstClean.load(std::memory_order_relaxed);
        D.Capacity = Capacity;
        const uint64_t Occ = Curr->Occ.load(std::memory_order_relaxed);
        for (uint32_t I = 0; I < Capacity; ++I) {
          if (!(Occ & (uint64_t{1} << I)))
            continue;
          analysis::FlowSlot Slot;
          Slot.Index = I;
          Slot.Key =
              Curr->Keys[I].load(std::memory_order_relaxed);
          D.Slots.push_back(Slot);
        }
        Chain.push_back(std::move(D));
      }
      return Chain;
    };
    return View;
  }

private:
  bool find(SetKey Key) const {
    for (const Chunk *C : {A, B}) {
      const uint64_t Occ = Policy::read(C->Occ, std::memory_order_acquire,
                                        &C->Occ, MemField::Marked);
      for (uint32_t I = 0; I < Capacity; ++I)
        if ((Occ & (uint64_t{1} << I)) &&
            Policy::read(C->Keys[I], std::memory_order_relaxed, &C->Keys[I],
                         MemField::Val) == Key)
          return true;
    }
    return false;
  }

  Chunk *Head;
  Chunk *A;
  Chunk *B;
  Chunk *Tail;
};

} // namespace tests
} // namespace vbl

#endif // VBL_TESTS_ANALYSIS_FLOWMUTANTLISTS_H
