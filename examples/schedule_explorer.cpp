//===- examples/schedule_explorer.cpp - Walk through Fig. 2 step by step -===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Build & run:  ./build/examples/schedule_explorer
///
/// A narrated version of the paper's Figure 2 using the deterministic
/// scheduler: it prints the correct schedule built by interleaving the
/// *sequential* code, then replays it against VBL (accepted, with the
/// full raw trace showing no lock on the failing insert) and against
/// the Lazy list (rejected: the failing insert blocks on X1's lock).
///
//===----------------------------------------------------------------------===//

#include "core/VblList.h"
#include "lists/LazyList.h"
#include "lists/SequentialList.h"
#include "reclaim/LeakyDomain.h"
#include "sched/InterleavingExplorer.h"
#include "sched/ScheduleChecker.h"
#include "sched/ScheduleExport.h"

#include <cstdio>

using namespace vbl;
using namespace vbl::sched;

namespace {

template <class ListT> EpisodeFactory fig2Factory() {
  return []() -> Episode {
    auto List = std::make_shared<ListT>();
    List->insert(1);
    Episode Ep;
    Ep.HeadNode = List->headNode();
    Ep.InitialChain = List->nodeChain();
    Ep.Holder = List;
    Ep.Bodies = {
        [List] {
          tracedOp(SetOp::Insert, 1, [&] { return List->insert(1); });
        },
        [List] {
          tracedOp(SetOp::Insert, 2, [&] { return List->insert(2); });
        }};
    return Ep;
  };
}

} // namespace

int main() {
  std::printf("=== Figure 2 of 'Optimal Concurrency for List-Based "
              "Sets', executed ===\n\n");
  std::printf("Initial list: {1}.  T0 runs insert(1), T1 runs "
              "insert(2).\n");
  std::printf("The schedule: T1 traverses and creates its node X2, THEN "
              "T0 completes\n(returning false), THEN T1 links X2.\n\n");

  // Build the schedule by interleaving the sequential implementation.
  InterleavingExplorer Explorer(
      fig2Factory<SequentialList<TracedPolicy>>());
  const EpisodeResult LL = Explorer.run({1, 1, 1, 1, 1, 0, 0, 0, 1});
  const Schedule Target = exportLLSchedule(LL.Raw, LL.Meta.HeadNode);

  std::printf("--- The schedule (exported LL events) ---\n%s\n",
              Target.toString().c_str());

  const CorrectnessResult Check =
      checkScheduleCorrect(Target, LL.Meta.InitialChain, {1, 2});
  std::printf("Definition 1 check: locally serializable=%s, "
              "sigma-bar(v) linearizable=%s -> %s\n\n",
              Check.LocallySerializable ? "yes" : "no",
              Check.Linearizable ? "yes" : "no",
              Check.correct() ? "CORRECT" : "INCORRECT");

  // Replay on VBL.
  using TracedVbl = VblList<reclaim::LeakyDomain, TracedPolicy>;
  const ReplayResult OnVbl =
      replaySchedule(fig2Factory<TracedVbl>(), Target);
  std::printf("--- VBL replay: %s ---\n",
              OnVbl.Accepted ? "ACCEPTED" : "REJECTED");
  std::printf("%s\n", OnVbl.RawTrace.toString().c_str());

  // Replay on Lazy.
  using TracedLazy = LazyList<reclaim::LeakyDomain, TracedPolicy>;
  const ReplayResult OnLazy =
      replaySchedule(fig2Factory<TracedLazy>(), Target);
  std::printf("--- Lazy replay: %s (%s) ---\n",
              OnLazy.Accepted ? "ACCEPTED" : "REJECTED",
              OnLazy.Reason.c_str());
  std::printf("%s\n", OnLazy.RawTrace.toString().c_str());

  std::printf("Summary: the Lazy list rejects a correct schedule "
              "(insert(1) is parked on X1's lock,\nheld by the "
              "still-unfinished insert(2)); VBL accepts it because a "
              "failing insert decides\nfrom values alone and never "
              "locks. That is the concurrency-optimality gap.\n");
  return OnVbl.Accepted && !OnLazy.Accepted ? 0 : 1;
}
