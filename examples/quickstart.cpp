//===- examples/quickstart.cpp - Five-minute tour of the library ---------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Build & run:  ./build/examples/quickstart
///
/// Shows the two ways to use the library:
///  1. The concrete template, `vbl::VblList<>`, when you want zero
///     dispatch overhead and access to knobs (reclamation domain, lock
///     type, algorithm variants).
///  2. The type-erased registry (`vbl::makeSet("vbl")`), when the
///     algorithm is a runtime choice — this is what the benchmark
///     harness uses to compare algorithms fairly.
///
//===----------------------------------------------------------------------===//

#include "core/VblList.h"
#include "lists/SetInterface.h"

#include <cstdio>
#include <thread>
#include <vector>

using namespace vbl;

int main() {
  // --- 1. The concrete template -------------------------------------
  VblList<> Set; // Epoch-reclaimed, TAS node locks, all paper options.

  std::printf("insert(3)  -> %s\n", Set.insert(3) ? "true" : "false");
  std::printf("insert(1)  -> %s\n", Set.insert(1) ? "true" : "false");
  std::printf("insert(3)  -> %s   (already present)\n",
              Set.insert(3) ? "true" : "false");
  std::printf("contains(1)-> %s\n", Set.contains(1) ? "true" : "false");
  std::printf("remove(1)  -> %s\n", Set.remove(1) ? "true" : "false");
  std::printf("contains(1)-> %s\n", Set.contains(1) ? "true" : "false");

  // Concurrent use needs no setup: every operation is internally
  // protected by an epoch guard; threads attach automatically.
  std::vector<std::thread> Threads;
  for (int T = 0; T != 4; ++T) {
    Threads.emplace_back([&Set, T] {
      for (SetKey Key = 0; Key != 1000; ++Key) {
        Set.insert(Key * 4 + T);
        if (Key % 3 == 0)
          Set.remove(Key * 4 + T);
      }
    });
  }
  for (auto &Thread : Threads)
    Thread.join();

  std::printf("size after concurrent phase: %zu\n", Set.sizeSlow());
  std::printf("structure intact: %s\n",
              Set.checkInvariants() ? "yes" : "NO (bug!)");
  std::printf("nodes retired=%llu freed=%llu (epoch reclamation)\n",
              static_cast<unsigned long long>(
                  Set.reclaimDomain().retiredCount()),
              static_cast<unsigned long long>(
                  Set.reclaimDomain().freedCount()));

  // --- 2. The registry ----------------------------------------------
  std::printf("\nregistered algorithms:");
  for (const std::string &Name : registeredSetNames())
    std::printf(" %s", Name.c_str());
  std::printf("\n");

  auto Lazy = makeSet("lazy");
  Lazy->insert(42);
  std::printf("lazy contains(42) -> %s\n",
              Lazy->contains(42) ? "true" : "false");
  return 0;
}
