//===- examples/lincheck_stress.cpp - Linearizability as a service -------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Build & run:  ./build/examples/lincheck_stress --algo vbl ...
///
/// Stress any registered algorithm under a contended workload while
/// recording the real-time operation history, then decide
/// linearizability with the per-key checker. Useful as a harness for
/// new algorithm variants: wire the variant into the registry, run
/// this, and get a concrete counterexample key when it is broken.
///
//===----------------------------------------------------------------------===//

#include "lin/LinChecker.h"
#include "lists/SetInterface.h"
#include "support/Barrier.h"
#include "support/CommandLine.h"
#include "support/Random.h"
#include "support/Timing.h"

#include <cstdio>
#include <thread>
#include <vector>

using namespace vbl;
using namespace vbl::lin;

int main(int Argc, char **Argv) {
  FlagSet Flags("Record a concurrent history and check linearizability");
  Flags.addString("algo", "vbl", "algorithm under test (see registry)");
  Flags.addInt("threads", 4, "worker threads");
  Flags.addInt("range", 8, "key range (small = contended)");
  Flags.addInt("ops-per-thread", 20000, "operations per worker");
  Flags.addInt("rounds", 3, "independent rounds (fresh list each)");
  Flags.addInt("seed", 1, "base seed");
  if (!Flags.parse(Argc, Argv))
    return 1;

  const std::string Algo = Flags.getString("algo");
  const auto Threads = static_cast<unsigned>(Flags.getInt("threads"));
  const SetKey Range = Flags.getInt("range");
  const auto Ops = static_cast<int>(Flags.getInt("ops-per-thread"));
  const auto Rounds = static_cast<int>(Flags.getInt("rounds"));

  for (int Round = 0; Round != Rounds; ++Round) {
    auto Set = makeSet(Algo);
    if (!Set) {
      std::fprintf(stderr, "error: unknown algorithm '%s'\n",
                   Algo.c_str());
      return 1;
    }
    std::vector<SetKey> Initial;
    for (SetKey Key = 0; Key < Range; Key += 2) {
      Set->insert(Key);
      Initial.push_back(Key);
    }

    HistoryRecorder Recorder(Threads);
    SpinBarrier Barrier(Threads);
    std::vector<std::thread> Workers;
    for (unsigned T = 0; T != Threads; ++T) {
      Workers.emplace_back([&, T, Round] {
        auto &Log = Recorder.threadLog(T);
        Xoshiro256 Rng(
            static_cast<uint64_t>(Flags.getInt("seed")) + T +
            1000 * static_cast<uint64_t>(Round));
        Barrier.arriveAndWait();
        for (int I = 0; I != Ops; ++I) {
          const SetKey Key = static_cast<SetKey>(
              Rng.nextBounded(static_cast<uint64_t>(Range)));
          switch (Rng.nextBounded(3)) {
          case 0:
            recordOp(
                Log, SetOp::Insert, Key,
                [&] { return Set->insert(Key); }, &nowNanos);
            break;
          case 1:
            recordOp(
                Log, SetOp::Remove, Key,
                [&] { return Set->remove(Key); }, &nowNanos);
            break;
          default:
            recordOp(
                Log, SetOp::Contains, Key,
                [&] { return Set->contains(Key); }, &nowNanos);
            break;
          }
        }
      });
    }
    for (auto &Worker : Workers)
      Worker.join();

    const Stopwatch CheckTimer;
    const LinResult Result = checkSetHistory(Recorder.merged(), Initial);
    std::printf("round %d: %zu ops on '%s' -> %s (checked in %.2fs)\n",
                Round, Recorder.totalOps(), Algo.c_str(),
                Result.Ok ? "LINEARIZABLE" : "NOT LINEARIZABLE",
                CheckTimer.elapsedSeconds());
    if (!Result.Ok) {
      std::printf("  violation: %s\n", Result.Message.c_str());
      return 1;
    }
  }
  return 0;
}
