//===- examples/dedup_filter.cpp - Concurrent stream deduplication -------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Build & run:  ./build/examples/dedup_filter [--threads N] ...
///
/// A workload the paper's introduction motivates: a small, hot
/// membership structure hammered by many threads where most operations
/// do not modify it. Worker threads consume an event stream; an event
/// id already in the window set is a duplicate and is dropped; fresh
/// ids are admitted and expired ids are removed by the same workers
/// (cooperative expiry). Duplicate-heavy traffic means most inserts
/// FAIL — exactly the case where VBL's decide-before-lock rule shines,
/// because failed updates stay lock-free.
///
/// The example runs the same stream over VBL and Lazy and reports
/// events/second plus exact duplicate accounting.
///
//===----------------------------------------------------------------------===//

#include "lists/SetInterface.h"
#include "support/Barrier.h"
#include "support/CommandLine.h"
#include "support/Random.h"
#include "support/Timing.h"

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

using namespace vbl;

namespace {

struct FilterStats {
  uint64_t Events = 0;
  uint64_t Admitted = 0;
  uint64_t Duplicates = 0;
  double Seconds = 0.0;
};

/// Runs the dedup filter on \p Algorithm. Every worker processes
/// EventsPerThread synthetic events whose ids are Zipf-ish (a small hot
/// set plus a long tail), so duplicates dominate.
FilterStats runFilter(const std::string &Algorithm, unsigned Threads,
                      uint64_t EventsPerThread, uint64_t HotIds,
                      uint64_t Seed) {
  auto Window = makeSet(Algorithm);
  std::atomic<uint64_t> Admitted{0}, Duplicates{0};
  SpinBarrier Barrier(Threads);

  std::vector<std::thread> Workers;
  Stopwatch Timer;
  for (unsigned T = 0; T != Threads; ++T) {
    Workers.emplace_back([&, T] {
      Xoshiro256 Rng(Seed + T);
      uint64_t MyAdmitted = 0, MyDuplicates = 0;
      Barrier.arriveAndWait();
      for (uint64_t I = 0; I != EventsPerThread; ++I) {
        // 90% of events hit the hot id set; 10% are long-tail ids.
        const bool Hot = Rng.nextPercent(90);
        const SetKey Id =
            Hot ? static_cast<SetKey>(Rng.nextBounded(HotIds))
                : static_cast<SetKey>(HotIds + Rng.nextBounded(1 << 20));
        if (Window->insert(Id)) {
          ++MyAdmitted;
          // Cooperative expiry: each admission retires one random hot
          // id so the window stays small and contended.
          Window->remove(static_cast<SetKey>(Rng.nextBounded(HotIds)));
        } else {
          ++MyDuplicates; // Failed insert == duplicate suppressed.
        }
      }
      Admitted.fetch_add(MyAdmitted, std::memory_order_relaxed);
      Duplicates.fetch_add(MyDuplicates, std::memory_order_relaxed);
    });
  }
  for (auto &Worker : Workers)
    Worker.join();

  FilterStats Stats;
  Stats.Seconds = Timer.elapsedSeconds();
  Stats.Events = static_cast<uint64_t>(Threads) * EventsPerThread;
  Stats.Admitted = Admitted.load();
  Stats.Duplicates = Duplicates.load();
  return Stats;
}

} // namespace

int main(int Argc, char **Argv) {
  FlagSet Flags("Concurrent event-stream deduplication filter");
  Flags.addInt("threads", 4, "worker threads");
  Flags.addInt("events-per-thread", 200000, "events each worker handles");
  Flags.addInt("hot-ids", 32, "size of the hot id set");
  Flags.addInt("seed", 7, "stream seed");
  if (!Flags.parse(Argc, Argv))
    return 1;

  const auto Threads = static_cast<unsigned>(Flags.getInt("threads"));
  const auto Events =
      static_cast<uint64_t>(Flags.getInt("events-per-thread"));
  const auto HotIds = static_cast<uint64_t>(Flags.getInt("hot-ids"));
  const auto Seed = static_cast<uint64_t>(Flags.getInt("seed"));

  std::printf("%-8s %12s %12s %12s %14s\n", "algo", "events",
              "admitted", "duplicates", "events/s");
  for (const char *Algorithm : {"vbl", "lazy", "harris-michael"}) {
    const FilterStats Stats =
        runFilter(Algorithm, Threads, Events, HotIds, Seed);
    std::printf("%-8s %12llu %12llu %12llu %14.0f\n", Algorithm,
                static_cast<unsigned long long>(Stats.Events),
                static_cast<unsigned long long>(Stats.Admitted),
                static_cast<unsigned long long>(Stats.Duplicates),
                static_cast<double>(Stats.Events) / Stats.Seconds);
  }
  std::printf("\n(duplicate-heavy streams make most inserts fail: VBL "
              "handles those without touching a lock)\n");
  return 0;
}
